//! Criterion bench for the session serve path: cold per-query
//! decomposition vs one long-lived `Session` specializing a cached
//! decomposition, on a stream of repeated aggregate queries against one
//! overlapping PC set.
//!
//! Modes:
//!
//! * `cold` — `BoundEngine::bound` per query: every query re-decomposes
//!   its region from scratch (the pre-session architecture).
//! * `warm_chain` — a `Session` with the cell cache *disabled*: cold
//!   decompositions, but simplex warm starts chained across queries.
//!   Isolates the warm-chaining contribution.
//! * `session` — the full session: decompose once against the domain,
//!   specialize cached cells per query, chain warm starts — with the
//!   default tableau carry, so structurally repeating LPs re-price one
//!   carried canonical tableau across queries. The serve path `pc batch`
//!   uses.
//! * `session_basis` — the full session with `tableau_carry` off:
//!   identical cell cache, but chained warm starts hand over bases only
//!   (the pre-carry architecture). Isolates the carry's contribution.
//!
//! Every mode is asserted (outside the timed region) to produce
//! identical ranges, so the bench only ever compares equal work; each
//! mode's aggregated `BoundReport::solver` counters (pivots, carried vs
//! rebuilt tableaux, branch & bound nodes) are emitted as
//! `serve_pivots/...` JSON lines next to the timing rows.
//!
//! Set `PC_BENCH_JSON=/path/file.json` to append machine-readable results
//! (the repo's `BENCH_serve.json` is produced this way).

use criterion::{criterion_group, criterion_main, Criterion};
use pc_bench::emit_bench_json_line;
use pc_core::budget::pressure::AdmissionVerdict;
use pc_core::{
    BoundEngine, BoundOptions, FrequencyConstraint, LpWork, PcSet, PredicateConstraint,
    QueryBudget, Session, SessionOptions, ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The solver-work columns that ride next to criterion's timing rows.
fn emit_work_profile(id: &str, w: &LpWork) {
    emit_bench_json_line(&format!(
        "{{\"id\": \"{id}\", \"pivots\": {}, \"carried\": {}, \"rebuilt\": {}, \"nodes\": {}}}",
        w.pivots, w.carried, w.rebuilt, w.nodes
    ));
}

/// An overlapping constraint set over (region, value): `n` staggered
/// range constraints whose boxes overlap their neighbors, so the
/// decomposition tree is genuinely bushy and worth amortizing.
fn serving_set(n: usize) -> PcSet {
    let schema = Schema::new(vec![("region", AttrType::Int), ("value", AttrType::Float)]);
    let mut set = PcSet::new(schema);
    for i in 0..n {
        let lo = (i * 5 % 23) as f64;
        // every third constraint is a narrow *floor* (a frequency lower
        // bound on a box small enough that query windows contain it
        // whole, so pushdown keeps the bound): floors force Ge rows into
        // the allocation LPs — a real phase 1 per cold solve — and
        // engage the AVG binary search below, the workload shapes the
        // warm-start tiers exist for
        let (hi, freq) = if i % 3 == 0 {
            (
                lo + 3.0,
                FrequencyConstraint::between(2, 15 + (i % 7) as u64),
            )
        } else {
            (
                lo + 9.0 + (i % 4) as f64,
                FrequencyConstraint::at_most(15 + (i % 7) as u64),
            )
        };
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, lo, hi)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 40.0 + 10.0 * (i % 6) as f64)),
            freq,
        ));
    }
    // a catch-all cap closes the set: every query gets finite bounds
    set.push(PredicateConstraint::new(
        Predicate::always(),
        ValueConstraint::none().with(1, Interval::closed(0.0, 100.0)),
        FrequencyConstraint::at_most(200),
    ));
    let mut domain = Region::full(set.schema());
    domain.set_interval(0, Interval::closed(0.0, 40.0));
    domain.set_interval(1, Interval::closed(0.0, 100.0));
    set.set_domain(domain);
    set
}

/// `a == b` within tolerance, treating equal infinities as equal.
fn close(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() < 1e-6
}

/// The query stream: aggregate queries over staggered region windows —
/// the repeated-traffic shape a session amortizes (every query's region
/// cuts the shared decomposition differently). AVG queries are the
/// chain-carry showcase: each runs a binary search of up to ~80
/// feasibility probes over the *same* constraint rows with shifting
/// objectives, so with `tableau_carry` every probe after the first
/// re-prices one carried tableau instead of rebuilding and crashing.
fn query_stream(count: usize) -> Vec<AggQuery> {
    (0..count)
        .map(|i| {
            let lo = (i * 7 % 29) as f64;
            let hi = lo + 6.0 + (i % 5) as f64;
            let predicate = Predicate::atom(Atom::between(0, lo, hi));
            match i % 4 {
                0 => AggQuery::new(AggKind::Sum, 1, predicate),
                1 => AggQuery::count(predicate),
                2 => AggQuery::new(AggKind::Avg, 1, predicate),
                _ => AggQuery::new(AggKind::Max, 1, predicate),
            }
        })
        .collect()
}

fn bench_query_throughput(c: &mut Criterion) {
    let opts = BoundOptions::default();
    let mut group = c.benchmark_group("query_throughput");
    group.sample_size(10);
    for n_constraints in [10usize, 14] {
        let set = serving_set(n_constraints);
        let queries = query_stream(24);

        // sanity outside the timed region: all four modes agree — and
        // their aggregated solver-work counters become the pivot columns
        // of the artifact
        let basis_opts = BoundOptions {
            tableau_carry: false,
            ..opts
        };
        let engine = BoundEngine::with_options(&set, opts);
        let session = Session::with_options(
            set.clone(),
            SessionOptions {
                bound: opts,
                ..SessionOptions::default()
            },
        );
        let session_basis = Session::with_options(
            set.clone(),
            SessionOptions {
                bound: basis_opts,
                ..SessionOptions::default()
            },
        );
        let chain_only = Session::with_options(
            set.clone(),
            SessionOptions {
                bound: opts,
                cache_cells: false,
                ..SessionOptions::default()
            },
        );
        let mut cold_work = LpWork::default();
        let mut session_work = LpWork::default();
        let mut basis_work = LpWork::default();
        let absorb = |into: &mut LpWork, w: LpWork| {
            into.pivots += w.pivots;
            into.carried += w.carried;
            into.rebuilt += w.rebuilt;
            into.nodes += w.nodes;
        };
        for q in &queries {
            let cold = engine.bound(q).expect("bounded workload");
            let served = session.bound(q).expect("bounded workload");
            let basis = session_basis.bound(q).expect("bounded workload");
            let chained = chain_only.bound(q).expect("bounded workload").range;
            absorb(&mut cold_work, cold.solver);
            absorb(&mut session_work, served.solver);
            absorb(&mut basis_work, basis.solver);
            let (cold, served, basis) = (cold.range, served.range, basis.range);
            assert!(
                close(cold.lo, served.lo) && close(cold.hi, served.hi),
                "session mismatch on {q:?}: {cold:?} vs {served:?}"
            );
            assert!(
                close(cold.lo, basis.lo) && close(cold.hi, basis.hi),
                "session_basis mismatch on {q:?}: {cold:?} vs {basis:?}"
            );
            assert!(
                close(cold.lo, chained.lo) && close(cold.hi, chained.hi),
                "warm-chain mismatch on {q:?}: {cold:?} vs {chained:?}"
            );
        }
        let param = format!("{n_constraints}pc");
        emit_work_profile(&format!("serve_pivots/cold/{param}"), &cold_work);
        emit_work_profile(&format!("serve_pivots/session/{param}"), &session_work);
        emit_work_profile(&format!("serve_pivots/session_basis/{param}"), &basis_work);

        group.bench_with_input(
            criterion::BenchmarkId::new("cold", &param),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let engine = BoundEngine::with_options(&set, opts);
                    for q in qs {
                        engine.bound(q).expect("bounded workload");
                    }
                })
            },
        );
        group.bench_with_input(
            criterion::BenchmarkId::new("warm_chain", &param),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let session = Session::with_options(
                        set.clone(),
                        SessionOptions {
                            bound: opts,
                            cache_cells: false,
                            ..SessionOptions::default()
                        },
                    );
                    for q in qs {
                        session.bound(q).expect("bounded workload");
                    }
                })
            },
        );
        // The session is constructed (and its cache filled) once, outside
        // the timed loop: this measures the steady serving state — the
        // whole point of the layer. The first iteration pays the one-time
        // decomposition; criterion's warmup absorbs it.
        group.bench_with_input(
            criterion::BenchmarkId::new("session", &param),
            &queries,
            |b, qs| {
                let session = Session::with_options(
                    set.clone(),
                    SessionOptions {
                        bound: opts,
                        ..SessionOptions::default()
                    },
                );
                b.iter(|| {
                    for q in qs {
                        session.bound(q).expect("bounded workload");
                    }
                })
            },
        );
        // carry-off ablation: same cache, bases-only warm chains
        group.bench_with_input(
            criterion::BenchmarkId::new("session_basis", &param),
            &queries,
            |b, qs| {
                let session = Session::with_options(
                    set.clone(),
                    SessionOptions {
                        bound: basis_opts,
                        ..SessionOptions::default()
                    },
                );
                b.iter(|| {
                    for q in qs {
                        session.bound(q).expect("bounded workload");
                    }
                })
            },
        );
    }
    group.finish();
}

/// Extra constraints the churn script admits and retires: wide caps whose
/// boxes cover the query windows whole, so existing cells are *contained*
/// rather than cut — the allocation LPs then keep their variables and
/// gain/lose exactly the churned constraint's row, which is the shape the
/// carried-tableau delta adaptation absorbs (append/delete one row + dual
/// restore instead of a cold rebuild).
fn churn_pool() -> Vec<PredicateConstraint> {
    (0..4)
        .map(|k| {
            PredicateConstraint::new(
                Predicate::atom(Atom::between(0, 0.0, 40.0)),
                ValueConstraint::none().with(1, Interval::closed(0.0, 95.0 - 5.0 * k as f64)),
                FrequencyConstraint::at_most(180 - 10 * k as u64),
            )
        })
        .collect()
}

/// One run of the churn script against a session: serve `queries` in
/// rounds, admitting a pool constraint after each round and retiring the
/// oldest live one every other round. Returns the served ranges plus the
/// summed per-epoch derivation stats (`cell_set().stats()` is each
/// epoch's own work) and the summed per-query solver work.
fn run_churn(
    session: &Session,
    queries: &[AggQuery],
) -> (Vec<(f64, f64)>, pc_core::DecomposeStats, LpWork) {
    let pool = churn_pool();
    let mut ranges = Vec::new();
    let mut decompose_work = pc_core::DecomposeStats::default();
    let mut solver_work = LpWork::default();
    let absorb_epoch = |session: &Session, w: &mut pc_core::DecomposeStats| {
        let stats = session.cell_set().expect("decomposable workload").stats();
        w.absorb(&stats);
    };
    absorb_epoch(session, &mut decompose_work);
    let mut live: Vec<pc_core::ConstraintId> = Vec::new();
    for (round, chunk) in queries.chunks(3).enumerate() {
        for q in chunk {
            let r = session.bound(q).expect("bounded workload");
            solver_work.pivots += r.solver.pivots;
            solver_work.carried += r.solver.carried;
            solver_work.rebuilt += r.solver.rebuilt;
            solver_work.nodes += r.solver.nodes;
            ranges.push((r.range.lo, r.range.hi));
        }
        if let Some(pc) = pool.get(round % pool.len()) {
            live.push(session.add_constraint(pc.clone()));
            absorb_epoch(session, &mut decompose_work);
        }
        if round % 2 == 1 {
            if let Some(id) = (!live.is_empty()).then(|| live.remove(0)) {
                session
                    .retire_constraint(id)
                    .expect("live id retires cleanly");
                absorb_epoch(session, &mut decompose_work);
            }
        }
    }
    (ranges, decompose_work, solver_work)
}

/// The constraint-churn scenario: serve N queries while K constraints are
/// added/retired in between — the versioned session's reason to exist.
///
/// * `incremental` — delta-derived epochs + tableau carry (the default
///   serving configuration).
/// * `rebuild` — `SessionOptions::incremental` off: every mutation pays a
///   full re-decomposition (the pre-epoch architecture). Isolates the
///   derivation's SAT-check savings (`churn_work/.../sat_checks`).
/// * `basis` — incremental epochs but `tableau_carry` off: chained warm
///   starts hand over bases only, so every cross-epoch LP falls back to
///   a crash/cold start instead of a one-row adaptation. Isolates the
///   carry's pivot savings (`churn_work/.../pivots`).
///
/// All three modes are asserted to produce identical ranges (and to match
/// a fresh engine on the final catalog), so the timings compare equal
/// answers; per-mode work profiles are emitted as `churn_work/...` JSON
/// lines next to criterion's timing rows.
fn bench_constraint_churn(c: &mut Criterion) {
    let opts = BoundOptions::default();
    let basis_opts = BoundOptions {
        tableau_carry: false,
        ..opts
    };
    let mut group = c.benchmark_group("constraint_churn");
    group.sample_size(10);
    for n_constraints in [10usize, 14] {
        let set = serving_set(n_constraints);
        let queries = query_stream(18);
        let make = |bound: BoundOptions, incremental: bool| {
            Session::with_options(
                set.clone(),
                SessionOptions {
                    bound,
                    incremental,
                    ..SessionOptions::default()
                },
            )
        };

        // sanity + work profiles outside the timed region
        let incremental = make(opts, true);
        let rebuild = make(opts, false);
        let basis = make(basis_opts, true);
        let (inc_ranges, inc_cells, inc_lp) = run_churn(&incremental, &queries);
        let (reb_ranges, reb_cells, reb_lp) = run_churn(&rebuild, &queries);
        let (bas_ranges, bas_cells, bas_lp) = run_churn(&basis, &queries);
        assert_eq!(inc_ranges.len(), reb_ranges.len());
        for (i, (a, b)) in inc_ranges.iter().zip(&reb_ranges).enumerate() {
            assert!(
                close(a.0, b.0) && close(a.1, b.1),
                "rebuild mismatch at {i}: {a:?} vs {b:?}"
            );
        }
        for (i, (a, b)) in inc_ranges.iter().zip(&bas_ranges).enumerate() {
            assert!(
                close(a.0, b.0) && close(a.1, b.1),
                "basis mismatch at {i}: {a:?} vs {b:?}"
            );
        }
        // the final catalog answers like a fresh engine
        {
            let final_set = incremental.pc_set();
            let fresh = BoundEngine::with_options(&final_set, opts);
            let q = &queries[0];
            let a = fresh.bound(q).expect("bounded workload").range;
            let b = incremental.bound(q).expect("bounded workload").range;
            assert!(close(a.lo, b.lo) && close(a.hi, b.hi));
        }
        let param = format!("{n_constraints}pc");
        for (mode, cells, lp) in [
            ("incremental", &inc_cells, &inc_lp),
            ("rebuild", &reb_cells, &reb_lp),
            ("basis", &bas_cells, &bas_lp),
        ] {
            emit_bench_json_line(&format!(
                "{{\"id\": \"churn_work/{mode}/{param}\", \"sat_checks\": {}, \
                 \"incremental_splits\": {}, \"pivots\": {}, \"carried\": {}, \
                 \"rebuilt\": {}, \"nodes\": {}}}",
                cells.sat_checks,
                cells.incremental_splits,
                lp.pivots,
                lp.carried,
                lp.rebuilt,
                lp.nodes
            ));
        }

        group.bench_with_input(
            criterion::BenchmarkId::new("incremental", &param),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let session = make(opts, true);
                    run_churn(&session, qs)
                })
            },
        );
        group.bench_with_input(
            criterion::BenchmarkId::new("rebuild", &param),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let session = make(opts, false);
                    run_churn(&session, qs)
                })
            },
        );
        group.bench_with_input(
            criterion::BenchmarkId::new("basis", &param),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let session = make(basis_opts, true);
                    run_churn(&session, qs)
                })
            },
        );
    }
    group.finish();
}

/// Latency percentile out of a sorted sample, in microseconds.
fn percentile_us(sorted: &[Duration], pct: usize) -> u128 {
    let idx = (sorted.len() * pct / 100).min(sorted.len() - 1);
    sorted[idx].as_micros()
}

/// The deadline-stress scenario: the serving stream under per-query
/// [`QueryBudget`]s — the robustness layer's "always answers by the
/// deadline" promise, measured.
///
/// Two artifact families ride next to the timing rows:
///
/// * `deadline_stress/deadline_<t>` — the 24-query stream served under a
///   per-query wall-clock deadline `t`, many rounds. Reports the
///   **degraded hit-rate** (what fraction of answers had to fall back to
///   a sound-but-wider range) and the latency percentiles. Every
///   degraded answer is asserted to *contain* the exact range first —
///   the stress never trades soundness.
/// * `deadline_stress/cancel` — the same stream served on budgets that
///   are **already cancelled** when the call starts: the measured
///   latency is pure cancellation response (how fast the pipeline's
///   cooperative checks notice and unwind through the degradation
///   ladder), and its p99 is the "cancel latency" a serving tier would
///   quote.
fn bench_deadline_stress(c: &mut Criterion) {
    let opts = BoundOptions::default();
    let set = serving_set(14);
    let queries = query_stream(24);
    let session = Session::with_options(
        set.clone(),
        SessionOptions {
            bound: opts,
            ..SessionOptions::default()
        },
    );
    // Exact oracle (and cache warm-up) outside any measured region.
    let oracle: Vec<(f64, f64)> = queries
        .iter()
        .map(|q| {
            let r = session.bound(q).expect("bounded workload").range;
            (r.lo, r.hi)
        })
        .collect();

    const ROUNDS: usize = 20;
    for (label, timeout) in [
        ("50us", Duration::from_micros(50)),
        ("500us", Duration::from_micros(500)),
        ("5ms", Duration::from_millis(5)),
    ] {
        let mut lat: Vec<Duration> = Vec::with_capacity(ROUNDS * queries.len());
        let mut degraded = 0usize;
        for _ in 0..ROUNDS {
            for (q, &(lo, hi)) in queries.iter().zip(&oracle) {
                let budget = QueryBudget::armed().with_timeout(timeout);
                let t0 = Instant::now();
                let r = session
                    .bound_budgeted(q, &budget)
                    .expect("a deadline degrades, never errors");
                lat.push(t0.elapsed());
                assert!(
                    r.range.lo <= lo + 1e-6 && r.range.hi >= hi - 1e-6,
                    "deadline {label}: degraded [{}, {}] must contain exact [{lo}, {hi}]",
                    r.range.lo,
                    r.range.hi
                );
                degraded += r.degraded as usize;
            }
        }
        lat.sort();
        emit_bench_json_line(&format!(
            "{{\"id\": \"deadline_stress/deadline_{label}\", \"queries\": {}, \
             \"degraded\": {degraded}, \"degraded_rate\": {:.4}, \
             \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            lat.len(),
            degraded as f64 / lat.len() as f64,
            percentile_us(&lat, 50),
            percentile_us(&lat, 99),
            lat.last().unwrap().as_micros()
        ));
    }

    // Cancellation response: the budget is tripped before the call, so
    // the whole measured latency is "how long until the engine notices
    // and answers degraded".
    let mut lat: Vec<Duration> = Vec::with_capacity(ROUNDS * queries.len());
    for _ in 0..ROUNDS {
        for (q, &(lo, hi)) in queries.iter().zip(&oracle) {
            let budget = QueryBudget::armed().with_sat_cap(u64::MAX);
            budget.cancel_token().expect("armed budget").cancel();
            let t0 = Instant::now();
            let r = session
                .bound_budgeted(q, &budget)
                .expect("a cancel degrades, never errors");
            lat.push(t0.elapsed());
            assert!(r.degraded, "a cancelled query's answer must be marked");
            assert!(r.range.lo <= lo + 1e-6 && r.range.hi >= hi - 1e-6);
        }
    }
    lat.sort();
    emit_bench_json_line(&format!(
        "{{\"id\": \"deadline_stress/cancel\", \"queries\": {}, \
         \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
        lat.len(),
        percentile_us(&lat, 50),
        percentile_us(&lat, 99),
        lat.last().unwrap().as_micros()
    ));

    // Timing rows: the budget layer's overhead on the un-tripped fast
    // path (unlimited vs a deadline generous enough to never fire).
    let mut group = c.benchmark_group("deadline_stress");
    group.sample_size(10);
    group.bench_with_input(
        criterion::BenchmarkId::new("unlimited", "14pc"),
        &queries,
        |b, qs| {
            b.iter(|| {
                for q in qs {
                    session.bound(q).expect("bounded workload");
                }
            })
        },
    );
    group.bench_with_input(
        criterion::BenchmarkId::new("deadline_1s", "14pc"),
        &queries,
        |b, qs| {
            b.iter(|| {
                for q in qs {
                    let budget = QueryBudget::armed().with_timeout(Duration::from_secs(1));
                    session
                        .bound_budgeted(q, &budget)
                        .expect("bounded workload");
                }
            })
        },
    );
    group.finish();
}

/// One answered arrival of an open-loop burst (see
/// [`bench_deadline_burst`]): latency is measured from the *planned*
/// arrival instant, so queue wait counts against the query exactly as a
/// client would experience it.
struct BurstRow {
    lat: Duration,
    degraded: bool,
    shed: bool,
    tight: bool,
    lo: f64,
    hi: f64,
    qi: usize,
}

/// Fire `arrivals` queries at a fixed `interval` (open loop: the driver
/// never waits for completions), each with its own arrival-anchored
/// deadline, and collect every answer. `tagged` routes the spawns through
/// the pool's EDF lane (the session's own fan-out inherits the tag via
/// `deadline_sched`); untagged spawns land in the plain FIFO injector.
fn run_burst(
    session: &Arc<Session>,
    queries: &[AggQuery],
    arrivals: usize,
    interval: Duration,
    deadlines: [Duration; 2],
    tagged: bool,
) -> Vec<BurstRow> {
    let (tx, rx) = std::sync::mpsc::channel::<BurstRow>();
    let start = Instant::now() + Duration::from_micros(200);
    for i in 0..arrivals {
        let planned = start + interval * i as u32;
        while Instant::now() < planned {
            std::hint::spin_loop();
        }
        let qi = i % queries.len();
        let q = queries[qi].clone();
        // One urgent arrival in six: the tight class alone must fit in
        // the pool's *contended* capacity (roughly 3x the uncontended
        // probe), or no scheduler could save it and the comparison would
        // only measure shedding.
        let tight = i % 6 == 0;
        let deadline = planned + deadlines[usize::from(!tight)];
        let session = Arc::clone(session);
        let tx = tx.clone();
        // Armed at arrival (not at task start): `armed_for` is the real
        // queue wait by the time the query runs.
        let budget = QueryBudget::armed().with_deadline(deadline);
        // Arrival-time admission: the verdict must come before the queue
        // wait, not after it — judging at task start would admit every
        // arrival into a queue none of them can survive.
        let ticket = session.admit(&q, &budget);
        let shed_at_arrival = matches!(
            ticket.as_ref().map(|t| t.verdict()),
            Some(AdmissionVerdict::Shed)
        );
        let task = move || {
            let r = session
                .bound_ticketed(&q, &budget, ticket)
                .expect("a deadline degrades, never errors");
            let shed = matches!(
                r.sched.as_ref().map(|s| s.verdict),
                Some(AdmissionVerdict::Shed)
            );
            let _ = tx.send(BurstRow {
                lat: planned.elapsed(),
                degraded: r.degraded,
                shed,
                tight,
                lo: r.range.lo,
                hi: r.range.hi,
                qi,
            });
        };
        if tagged {
            // A shed verdict is a rejection notice: it costs one serial
            // granule and should reach the client immediately, not queue
            // behind the very backlog it was shed to avoid — tag it
            // "due now" so it pops ahead of everything.
            let tag = if shed_at_arrival {
                Instant::now()
            } else {
                deadline
            };
            rayon::with_task_deadline(Some(tag), || rayon::spawn(task));
        } else {
            rayon::spawn(task);
        }
    }
    drop(tx);
    rx.iter().collect()
}

/// The overload scenario the scheduler PR exists for: an open-loop burst
/// of arrivals (fixed inter-arrival gap, driver never backpressures)
/// with **mixed urgency** — arrivals alternate a tight and a loose
/// deadline, both anchored at the arrival instant. Served FIFO, tight
/// queries queue behind loose ones and trip; served EDF with admission,
/// the lane pops the most urgent task first and the gauge degrades or
/// sheds only what provably cannot finish. Same offered load, same
/// deadlines, same session configuration otherwise — the artifact rows
/// (`deadline_stress/burst_fifo` vs `burst_edf`) report degraded-rate
/// and latency percentiles, and every answer (degraded, shed, or exact)
/// is asserted to contain the exact range before anything is recorded.
fn bench_deadline_burst(_c: &mut Criterion) {
    let set = serving_set(14);
    let queries = query_stream(24);
    const ARRIVALS: usize = 96;

    // Scale the scenario to this machine. The burst constants are
    // ratios of the measured uncontended per-query service time, so the
    // same overload factor reproduces on fast and slow hosts alike;
    // fixed microsecond constants flip between trivial and hopeless as
    // the host speed drifts. Arrivals come ~1.7x faster than serial
    // drain, so the queue by burst end (~40 services deep) reaches the
    // loose deadline (42 services): early loose arrivals survive, the
    // late tail is marginal or hopeless and worth rejecting early, and
    // tight ones (14 services) only survive if served first — the
    // regime where scheduling, not capacity, decides who meets a
    // deadline.
    let probe = Session::with_options(set.clone(), SessionOptions::default());
    for q in &queries {
        probe.bound(q).expect("probe warm-up");
    }
    // Min over several passes: the probe anchors every constant below,
    // and a single descheduling sputter during one pass would inflate it
    // 3-4x and silently swap the regime for an easy one. A query can't
    // run faster than its work, so the min is the robust estimate.
    let mut service = Duration::MAX;
    for _ in 0..5 {
        let probe_start = Instant::now();
        for q in &queries {
            probe.bound(q).expect("service probe");
        }
        service = service.min(probe_start.elapsed() / queries.len() as u32);
    }
    let service = service.max(Duration::from_micros(40));
    let interval = service * 3 / 5;
    let deadlines = [service * 14, service * 42];

    // Exact oracle from an untimed session.
    let oracle_session = Session::with_options(set.clone(), SessionOptions::default());
    let oracle: Vec<(f64, f64)> = queries
        .iter()
        .map(|q| {
            let r = oracle_session.bound(q).expect("bounded workload").range;
            (r.lo, r.hi)
        })
        .collect();

    let mut arms: Vec<(&str, bool, Arc<Session>, Vec<BurstRow>)> = Vec::new();
    for (mode, tagged, options) in [
        (
            "fifo",
            false,
            SessionOptions {
                deadline_sched: false,
                admission: false,
                ..SessionOptions::default()
            },
        ),
        ("edf", true, SessionOptions::default()),
    ] {
        let session = Arc::new(Session::with_options(set.clone(), options));
        // Warm the cell cache and worker warm-starts outside the burst:
        // this benchmarks the scheduler under load, not a cold session.
        for q in &queries {
            session.bound(q).expect("warm-up");
        }
        // Calibrate the gauge's service-time EWMA with uncontended timed
        // runs (generous deadline: admits exact, completes, calibrates).
        // A burst against an uncalibrated gauge admits everything — that
        // measures the cold-start transient, not the scheduler.
        for q in &queries {
            let warm = QueryBudget::armed().with_timeout(Duration::from_secs(1));
            session.bound_budgeted(q, &warm).expect("calibration run");
        }
        arms.push((mode, tagged, session, Vec::new()));
    }
    // Pool several bursts: one 96-arrival burst's p99 is its max, so a
    // single unlucky steal would dominate the row. Rounds alternate the
    // FIFO and EDF arms so slow machine drift hits both equally, run on
    // the same per-arm session — the gauge stays calibrated, as in
    // steady serving — with a settle gap so each burst starts
    // queue-empty.
    const ROUNDS: usize = 12;
    for _ in 0..ROUNDS {
        for (_, tagged, session, rows) in arms.iter_mut() {
            // Re-converge the gauge in the calm gap between bursts:
            // settles from inside a burst measure contention, not
            // service, and drift the EWMA up; in steady serving the
            // calm traffic between bursts pulls it back down.
            for q in &queries {
                let warm = QueryBudget::armed().with_timeout(Duration::from_secs(1));
                session.bound_budgeted(q, &warm).expect("calibration run");
            }
            rows.extend(run_burst(
                session, &queries, ARRIVALS, interval, deadlines, *tagged,
            ));
            std::thread::sleep(Duration::from_millis(5));
        }
    }
    for (mode, _, _, mut rows) in arms {
        for row in &rows {
            let (lo, hi) = oracle[row.qi];
            assert!(
                row.lo <= lo + 1e-6 && row.hi >= hi - 1e-6,
                "burst_{mode}: answer [{}, {}] must contain exact [{lo}, {hi}]",
                row.lo,
                row.hi
            );
        }
        let degraded = rows.iter().filter(|r| r.degraded).count();
        let degraded_tight = rows.iter().filter(|r| r.degraded && r.tight).count();
        let shed = rows.iter().filter(|r| r.shed).count();
        rows.sort_by_key(|r| r.lat);
        let lat: Vec<Duration> = rows.iter().map(|r| r.lat).collect();
        emit_bench_json_line(&format!(
            "{{\"id\": \"deadline_stress/burst_{mode}\", \"arrivals\": {}, \
             \"service_us\": {}, \
             \"interval_us\": {}, \"deadline_tight_us\": {}, \"deadline_loose_us\": {}, \
             \"degraded\": {degraded}, \"degraded_rate\": {:.4}, \
             \"degraded_tight\": {degraded_tight}, \"shed\": {shed}, \
             \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            rows.len(),
            service.as_micros(),
            interval.as_micros(),
            deadlines[0].as_micros(),
            deadlines[1].as_micros(),
            degraded as f64 / rows.len() as f64,
            percentile_us(&lat, 50),
            percentile_us(&lat, 99),
            lat.last().unwrap().as_micros()
        ));
    }
}

criterion_group!(
    benches,
    bench_query_throughput,
    bench_constraint_churn,
    bench_deadline_stress,
    bench_deadline_burst,
    bench_serve_net
);
criterion_main!(benches);

// ----------------------------------------------------------------------
// serve_net: open-loop traffic replay through the real `pc serve` socket
// ----------------------------------------------------------------------

/// One answered arrival of the socket replay ([`bench_serve_net`]):
/// latency is anchored at the *planned* arrival instant, so socket
/// buffering and per-connection queueing count against the query
/// exactly as a remote client would experience them.
struct NetRow {
    lat: Duration,
    epoch: u64,
    qi: usize,
    range: Option<(f64, f64)>,
    degraded: bool,
    shed: bool,
}

/// The wire-notation mutation stream every tenant receives during the
/// overload replay (identical per tenant, so one epoch-keyed oracle
/// serves them all). The base catalog seeds ids `c0..c14`
/// (`serving_set(14)` plus its catch-all), so the adds land as
/// `c15`/`c16`/`c17`.
const NET_MUTATIONS: &[&str] = &[
    "+ TRUE => value BETWEEN 0 AND 100, (0, 180)",
    "+ TRUE => value BETWEEN 0 AND 100, (0, 160)",
    "- c15",
    "+ TRUE => value BETWEEN 0 AND 100, (5, 150)",
];

/// The replayed query mix, as SQL text (the wire carries text, and the
/// oracle parses the same text, so the two sides cannot diverge).
fn net_sqls() -> Vec<String> {
    (0..8)
        .map(|i| {
            let lo = (i * 7 % 29) as f64;
            let hi = lo + 6.0 + (i % 5) as f64;
            match i % 4 {
                0 => format!("SELECT SUM(value) WHERE region BETWEEN {lo} AND {hi}"),
                1 => format!("SELECT COUNT(*) WHERE region BETWEEN {lo} AND {hi}"),
                2 => format!("SELECT AVG(value) WHERE region BETWEEN {lo} AND {hi}"),
                _ => format!("SELECT MAX(value) WHERE region BETWEEN {lo} AND {hi}"),
            }
        })
        .collect()
}

/// Replay [`NET_MUTATIONS`] against a local shadow session and record
/// the exact range of every query at every epoch — the containment
/// oracle for the socket replay (`None` = provably empty aggregate).
fn net_oracle(
    set: &PcSet,
    table: &pc_storage::Table,
    sqls: &[String],
) -> Vec<Vec<Option<(f64, f64)>>> {
    use pc_core::dsl;
    let session = Session::with_options(set.clone(), SessionOptions::default());
    let queries: Vec<AggQuery> = sqls
        .iter()
        .map(|sql| pc_storage::parse_query(table, sql).expect("oracle parses the replayed SQL"))
        .collect();
    let budget = QueryBudget::unlimited();
    let snapshot = |session: &Session| -> Vec<Option<(f64, f64)>> {
        queries
            .iter()
            .map(|q| match session.bound(q) {
                Ok(r) => Some((r.range.lo, r.range.hi)),
                Err(pc_core::BoundError::EmptyAggregate) => None,
                Err(e) => panic!("oracle query failed: {e}"),
            })
            .collect()
    };
    let mut oracle = vec![snapshot(&session)];
    for line in NET_MUTATIONS {
        if let Some(rest) = line.strip_prefix("+ ") {
            let pc = dsl::parse_constraint(table, rest).expect("oracle mutation parses");
            session.add_constraint_stamped(pc, &budget);
        } else if let Some(rest) = line.strip_prefix("- ") {
            session
                .retire_constraint_stamped(rest.parse().expect("oracle id parses"))
                .expect("oracle retire hits a live id");
        } else {
            panic!("unhandled mutation line {line}");
        }
        oracle.push(snapshot(&session));
    }
    oracle
}

/// Send one line and read its full response (header + declared rows),
/// strictly paired — the calibration/admin path next to the pipelined
/// replay.
fn sync_request(
    write: &mut std::net::TcpStream,
    read: &mut std::io::BufReader<std::net::TcpStream>,
    line: &str,
) -> String {
    use std::io::{BufRead, Write};
    // one write per request: a split line + trailing newline would
    // trigger Nagle vs delayed-ACK (~40ms) on a connection without
    // TCP_NODELAY
    write.write_all(format!("{line}\n").as_bytes()).unwrap();
    write.flush().unwrap();
    let mut header = String::new();
    read.read_line(&mut header).unwrap();
    let header = header.trim_end().to_string();
    for _ in 0..pc_serve::proto::declared_rows(&header) {
        let mut row = String::new();
        read.read_line(&mut row).unwrap();
    }
    header
}

/// Sleep-only pacing (no spin): paced writer threads must not burn the
/// core the server needs — on a single-CPU host a spinning pacer starves
/// the very connection threads it is benchmarking. The ~50-100us
/// oversleep this costs is honest open-loop jitter: latency stays
/// anchored at the *planned* instant either way.
fn sleep_until(t: Instant) {
    let mut now = Instant::now();
    while now < t {
        std::thread::sleep(t - now);
        now = Instant::now();
    }
}

/// Open-loop replay against a running server: `arrivals` requests at a
/// fixed global `interval`, round-robined over `conns_per_tenant`
/// pipelined connections per tenant (writers never wait for responses —
/// per-connection queueing is part of the measured latency). One in six
/// arrivals carries a tight `@timeout-ms=1` deadline and one in six a
/// `@sat-cap=2` work cap, so the degraded/shed machinery is exercised
/// through the wire, not just the in-process API. When `mutate` is set,
/// every tenant concurrently receives [`NET_MUTATIONS`] spread across
/// the replay span — the mutation mix the MVCC stamps are for.
fn replay_open_loop(
    addr: std::net::SocketAddr,
    tenants: &[&str],
    conns_per_tenant: usize,
    sqls: &[String],
    arrivals: usize,
    interval: Duration,
    mutate: bool,
) -> Vec<NetRow> {
    use std::io::{BufRead, BufReader};
    use std::net::TcpStream;
    use std::sync::mpsc;
    use std::sync::{Barrier, Mutex};

    let total_conns = tenants.len() * conns_per_tenant;
    let mutator_count = if mutate { tenants.len() } else { 0 };
    let ready = Arc::new(Barrier::new(total_conns + mutator_count + 1));
    let go = Arc::new(Barrier::new(total_conns + mutator_count + 1));
    let start_cell = Arc::new(Mutex::new(None::<Instant>));
    let (row_tx, row_rx) = mpsc::channel::<NetRow>();
    let mut joins = Vec::new();
    for c in 0..total_conns {
        let tenant = tenants[c % tenants.len()].to_string();
        let sqls = sqls.to_vec();
        let ready = Arc::clone(&ready);
        let go = Arc::clone(&go);
        let start_cell = Arc::clone(&start_cell);
        let row_tx = row_tx.clone();
        joins.push(std::thread::spawn(move || {
            let mut write = TcpStream::connect(addr).unwrap();
            write.set_nodelay(true).unwrap();
            let mut read = BufReader::new(write.try_clone().unwrap());
            let header = sync_request(&mut write, &mut read, &format!("use {tenant}"));
            assert!(header.starts_with("OK"), "{header}");
            // Warm this tenant's decomposition/cell caches outside the
            // timed replay — otherwise the first query's cold decompose
            // backs up every connection and the replay measures one
            // cold start instead of the steady serving path.
            for sql in &sqls {
                let header = sync_request(&mut write, &mut read, &format!("bound {sql}"));
                assert!(header.starts_with("OK"), "{header}");
            }
            ready.wait();
            go.wait();
            let start = start_cell
                .lock()
                .unwrap()
                .expect("start published before go");
            // Pipelined writer: paced by the global schedule, never
            // blocked on responses. This thread reads in request order
            // (the protocol's strict pairing makes that sound).
            let (meta_tx, meta_rx) = mpsc::channel::<(Instant, usize)>();
            let mut w2 = write.try_clone().unwrap();
            let writer = std::thread::spawn(move || {
                use std::io::Write;
                let mut k = c;
                while k < arrivals {
                    let planned = start + interval * k as u32;
                    sleep_until(planned);
                    let qi = k % sqls.len();
                    let line = match k % 6 {
                        0 => format!("bound @timeout-ms=1 {}", sqls[qi]),
                        3 => format!("bound @sat-cap=2 {}", sqls[qi]),
                        _ => format!("bound {}", sqls[qi]),
                    };
                    w2.write_all(format!("{line}\n").as_bytes()).unwrap();
                    w2.flush().unwrap();
                    meta_tx.send((planned, qi)).unwrap();
                    k += total_conns;
                }
            });
            for (planned, qi) in meta_rx {
                let mut header = String::new();
                read.read_line(&mut header).unwrap();
                let header = header.trim_end();
                assert!(header.starts_with("OK bound"), "replay got {header}");
                let epoch: u64 = pc_serve::proto::field(header, "epoch")
                    .and_then(|e| e.parse().ok())
                    .expect("bound responses stamp their epoch");
                let empty = header.ends_with(" empty");
                let range = if empty {
                    None
                } else {
                    Some(
                        pc_serve::proto::parse_range(header)
                            .expect("bound response carries a range"),
                    )
                };
                let (degraded, shed) = if empty {
                    (false, false)
                } else {
                    (
                        pc_serve::proto::field(header, "degraded") == Some("true"),
                        pc_serve::proto::field(header, "verdict") == Some("shed"),
                    )
                };
                row_tx
                    .send(NetRow {
                        lat: planned.elapsed(),
                        epoch,
                        qi,
                        range,
                        degraded,
                        shed,
                    })
                    .unwrap();
            }
            writer.join().unwrap();
        }));
    }
    drop(row_tx);

    // One mutator per tenant. Connected (and `use`d) *before* the start
    // barrier: under load the accept loop's poll tick would otherwise
    // delay a late connect past the whole replay, pushing every
    // mutation after the last query. Mutations are spread across twice
    // the arrival span — under overload processing outlasts arrivals,
    // and the stamps should interleave with the backlog drain too.
    let mut mutators = Vec::new();
    let span = interval * arrivals as u32 * 2;
    for tenant in tenants.iter().take(mutator_count) {
        let tenant = tenant.to_string();
        let ready = Arc::clone(&ready);
        let go = Arc::clone(&go);
        let start_cell = Arc::clone(&start_cell);
        mutators.push(std::thread::spawn(move || {
            let mut write = TcpStream::connect(addr).unwrap();
            write.set_nodelay(true).unwrap();
            let mut read = BufReader::new(write.try_clone().unwrap());
            let header = sync_request(&mut write, &mut read, &format!("use {tenant}"));
            assert!(header.starts_with("OK"), "{header}");
            ready.wait();
            go.wait();
            let start = start_cell
                .lock()
                .unwrap()
                .expect("start published before go");
            for (m, line) in NET_MUTATIONS.iter().enumerate() {
                sleep_until(start + span * (m as u32 + 1) / (NET_MUTATIONS.len() as u32 + 1));
                let header = sync_request(&mut write, &mut read, line);
                assert!(header.starts_with("OK"), "`{line}` on {tenant}: {header}");
                let epoch =
                    pc_serve::proto::field(&header, "epoch").and_then(|e| e.parse::<u64>().ok());
                // one mutator per tenant: epochs advance densely
                assert_eq!(epoch, Some(m as u64 + 1), "`{line}` on {tenant}");
            }
        }));
    }

    ready.wait();
    let start = Instant::now() + Duration::from_millis(20);
    *start_cell.lock().unwrap() = Some(start);
    go.wait();

    // collect while the replay runs; the channel closes when the last
    // connection finishes reading its final response
    let mut wire_range: Vec<NetRow> = row_rx.iter().collect();
    for j in joins {
        j.join().unwrap();
    }
    for m in mutators {
        m.join().unwrap();
    }
    wire_range.sort_by_key(|r| r.lat);
    wire_range
}

/// The serving front-end measured end-to-end: an open-loop traffic
/// replay through real TCP connections against a running `pc serve`
/// ([`Server`]), 3 tenants x 2 pipelined connections, mixed budget
/// directives on the wire, and (in the overload row) concurrent
/// mutations on every tenant. Rows record client-experienced latency
/// percentiles and the degraded/shed rates; **every** response's range
/// is asserted to contain the exact oracle range *for its stamped
/// epoch* before anything is recorded — the MVCC containment guarantee,
/// checked through the socket.
fn bench_serve_net(_c: &mut Criterion) {
    use pc_serve::{ServeConfig, Server};
    use std::io::BufReader;
    use std::net::TcpStream;

    let set = serving_set(14);
    let schema = Schema::new(vec![("region", AttrType::Int), ("value", AttrType::Float)]);
    let table = pc_storage::table_from_csv(schema, "region,value\n1,5.0\n20,40.0\n").unwrap();
    let sqls = net_sqls();
    let oracle = net_oracle(&set, &table, &sqls);

    // service-time probe, as in the burst bench: the replay rates are
    // ratios of this machine's uncontended per-query cost
    let probe = Session::with_options(set.clone(), SessionOptions::default());
    let queries: Vec<AggQuery> = sqls
        .iter()
        .map(|sql| pc_storage::parse_query(&table, sql).unwrap())
        .collect();
    for q in &queries {
        probe.bound(q).expect("probe warm-up");
    }
    let mut service = Duration::MAX;
    for _ in 0..5 {
        let t0 = Instant::now();
        for q in &queries {
            probe.bound(q).expect("service probe");
        }
        service = service.min(t0.elapsed() / queries.len() as u32);
    }
    let service = service.max(Duration::from_micros(40));

    let server = Server::bind("127.0.0.1:0", table, set, ServeConfig::default()).unwrap();
    let addr = server.local_addr().unwrap();
    let server_thread = std::thread::spawn(move || server.run().unwrap());

    let tenants = ["default", "t1", "t2"];
    {
        let mut admin = TcpStream::connect(addr).unwrap();
        admin.set_nodelay(true).unwrap();
        let mut read = BufReader::new(admin.try_clone().unwrap());
        for tenant in &tenants[1..] {
            let header = sync_request(&mut admin, &mut read, &format!("tenant create {tenant}"));
            assert!(header.starts_with("OK"), "{header}");
        }
    }

    // steady: arrivals well under capacity (epoch 0 everywhere), then
    // overload: ~1.7x the serial drain rate with mutations racing
    let scenarios = [
        ("steady", 240usize, service * 3, false),
        ("overload", 480usize, service * 3 / 5, true),
    ];
    for (name, arrivals, interval, mutate) in scenarios {
        let rows = replay_open_loop(addr, &tenants, 2, &sqls, arrivals, interval, mutate);
        assert_eq!(rows.len(), arrivals, "every arrival must be answered");
        let mut epochs = std::collections::BTreeMap::<u64, usize>::new();
        for row in &rows {
            *epochs.entry(row.epoch).or_insert(0) += 1;
            let want = oracle
                .get(row.epoch as usize)
                .unwrap_or_else(|| panic!("response stamped unknown epoch {}", row.epoch))[row.qi];
            match (want, row.range) {
                (None, got) => assert!(got.is_none(), "oracle says empty, wire said {got:?}"),
                (Some((lo, hi)), None) => panic!("wire said empty, oracle [{lo},{hi}]"),
                // the MVCC guarantee, through the socket: the answer
                // must contain the exact range *of its stamped epoch*
                // (equal when exact; wider only when degraded/shed)
                (Some((lo, hi)), Some((got_lo, got_hi))) => {
                    let eps = 1e-6 * hi.abs().max(lo.abs()).max(1.0);
                    assert!(
                        got_lo <= lo + eps && got_hi >= hi - eps,
                        "epoch {} q{}: wire [{got_lo},{got_hi}] !contains oracle [{lo},{hi}]",
                        row.epoch,
                        row.qi
                    );
                    if !row.degraded && !row.shed {
                        assert!(
                            (got_lo - lo).abs() <= eps && (got_hi - hi).abs() <= eps,
                            "epoch {} q{}: exact answer [{got_lo},{got_hi}] != oracle [{lo},{hi}]",
                            row.epoch,
                            row.qi
                        );
                    }
                }
            }
        }
        let degraded = rows.iter().filter(|r| r.degraded).count();
        let shed = rows.iter().filter(|r| r.shed).count();
        let lat: Vec<Duration> = rows.iter().map(|r| r.lat).collect();
        emit_bench_json_line(&format!(
            "{{\"id\": \"serve_net/{name}\", \"arrivals\": {arrivals}, \"tenants\": {}, \
             \"connections\": {}, \"mutations\": {}, \"service_us\": {}, \"interval_us\": {}, \
             \"epochs_observed\": {}, \"by_epoch\": {{{}}}, \
             \"degraded\": {degraded}, \"degraded_rate\": {:.4}, \
             \"shed\": {shed}, \"shed_rate\": {:.4}, \
             \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}}}",
            tenants.len(),
            tenants.len() * 2,
            if mutate {
                tenants.len() * NET_MUTATIONS.len()
            } else {
                0
            },
            service.as_micros(),
            interval.as_micros(),
            epochs.len(),
            epochs
                .iter()
                .map(|(e, n)| format!("\"{e}\": {n}"))
                .collect::<Vec<_>>()
                .join(", "),
            degraded as f64 / rows.len() as f64,
            shed as f64 / rows.len() as f64,
            percentile_us(&lat, 50),
            percentile_us(&lat, 95),
            percentile_us(&lat, 99),
            lat.last().unwrap().as_micros()
        ));
    }

    // satellite: the shed-cache counters surfaced by the `stats` verb,
    // summed over tenants — the same counters `pc batch --stats` prints
    let mut admin = TcpStream::connect(addr).unwrap();
    admin.set_nodelay(true).unwrap();
    let mut read = BufReader::new(admin.try_clone().unwrap());
    let (mut hits, mut misses) = (0u64, 0u64);
    for tenant in &tenants {
        let header = sync_request(&mut admin, &mut read, &format!("stats {tenant}"));
        assert!(header.starts_with("OK"), "{header}");
        hits += pc_serve::proto::field(&header, "shed-cache-hits")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap();
        misses += pc_serve::proto::field(&header, "shed-cache-misses")
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap();
    }
    emit_bench_json_line(&format!(
        "{{\"id\": \"serve_net/shed_cache\", \"hits\": {hits}, \"misses\": {misses}}}"
    ));
    let header = sync_request(&mut admin, &mut read, "shutdown");
    assert!(header.starts_with("OK"), "{header}");
    server_thread.join().unwrap();
}
