//! Criterion bench for the session serve path: cold per-query
//! decomposition vs one long-lived `Session` specializing a cached
//! decomposition, on a stream of repeated aggregate queries against one
//! overlapping PC set.
//!
//! Modes:
//!
//! * `cold` — `BoundEngine::bound` per query: every query re-decomposes
//!   its region from scratch (the pre-session architecture).
//! * `warm_chain` — a `Session` with the cell cache *disabled*: cold
//!   decompositions, but simplex warm starts chained across queries.
//!   Isolates the warm-chaining contribution.
//! * `session` — the full session: decompose once against the domain,
//!   specialize cached cells per query, chain warm starts. The serve
//!   path `pc batch` uses.
//!
//! Every mode is asserted (outside the timed region) to produce
//! identical ranges, so the bench only ever compares equal work.
//!
//! Set `PC_BENCH_JSON=/path/file.json` to append machine-readable results
//! (the repo's `BENCH_serve.json` is produced this way).

use criterion::{criterion_group, criterion_main, Criterion};
use pc_core::{
    BoundEngine, BoundOptions, FrequencyConstraint, PcSet, PredicateConstraint, Session,
    SessionOptions, ValueConstraint,
};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Region, Schema};
use pc_storage::{AggKind, AggQuery};

/// An overlapping constraint set over (region, value): `n` staggered
/// range constraints whose boxes overlap their neighbors, so the
/// decomposition tree is genuinely bushy and worth amortizing.
fn serving_set(n: usize) -> PcSet {
    let schema = Schema::new(vec![("region", AttrType::Int), ("value", AttrType::Float)]);
    let mut set = PcSet::new(schema);
    for i in 0..n {
        let lo = (i * 5 % 23) as f64;
        let hi = lo + 9.0 + (i % 4) as f64;
        set.push(PredicateConstraint::new(
            Predicate::atom(Atom::between(0, lo, hi)),
            ValueConstraint::none().with(1, Interval::closed(0.0, 40.0 + 10.0 * (i % 6) as f64)),
            FrequencyConstraint::at_most(15 + (i % 7) as u64),
        ));
    }
    // a catch-all cap closes the set: every query gets finite bounds
    set.push(PredicateConstraint::new(
        Predicate::always(),
        ValueConstraint::none().with(1, Interval::closed(0.0, 100.0)),
        FrequencyConstraint::at_most(200),
    ));
    let mut domain = Region::full(set.schema());
    domain.set_interval(0, Interval::closed(0.0, 40.0));
    domain.set_interval(1, Interval::closed(0.0, 100.0));
    set.set_domain(domain);
    set
}

/// `a == b` within tolerance, treating equal infinities as equal.
fn close(a: f64, b: f64) -> bool {
    a == b || (a - b).abs() < 1e-6
}

/// The query stream: aggregate queries over staggered region windows —
/// the repeated-traffic shape a session amortizes (every query's region
/// cuts the shared decomposition differently).
fn query_stream(count: usize) -> Vec<AggQuery> {
    (0..count)
        .map(|i| {
            let lo = (i * 7 % 29) as f64;
            let hi = lo + 6.0 + (i % 5) as f64;
            let predicate = Predicate::atom(Atom::between(0, lo, hi));
            match i % 3 {
                0 => AggQuery::new(AggKind::Sum, 1, predicate),
                1 => AggQuery::count(predicate),
                _ => AggQuery::new(AggKind::Max, 1, predicate),
            }
        })
        .collect()
}

fn bench_query_throughput(c: &mut Criterion) {
    let opts = BoundOptions::default();
    let mut group = c.benchmark_group("query_throughput");
    group.sample_size(10);
    for n_constraints in [10usize, 14] {
        let set = serving_set(n_constraints);
        let queries = query_stream(24);

        // sanity outside the timed region: all three modes agree
        let engine = BoundEngine::with_options(&set, opts);
        let session = Session::with_options(
            &set,
            SessionOptions {
                bound: opts,
                cache_cells: true,
            },
        );
        let chain_only = Session::with_options(
            &set,
            SessionOptions {
                bound: opts,
                cache_cells: false,
            },
        );
        for q in &queries {
            let cold = engine.bound(q).expect("bounded workload").range;
            let served = session.bound(q).expect("bounded workload").range;
            let chained = chain_only.bound(q).expect("bounded workload").range;
            assert!(
                close(cold.lo, served.lo) && close(cold.hi, served.hi),
                "session mismatch on {q:?}: {cold:?} vs {served:?}"
            );
            assert!(
                close(cold.lo, chained.lo) && close(cold.hi, chained.hi),
                "warm-chain mismatch on {q:?}: {cold:?} vs {chained:?}"
            );
        }

        let param = format!("{n_constraints}pc");
        group.bench_with_input(
            criterion::BenchmarkId::new("cold", &param),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let engine = BoundEngine::with_options(&set, opts);
                    for q in qs {
                        engine.bound(q).expect("bounded workload");
                    }
                })
            },
        );
        group.bench_with_input(
            criterion::BenchmarkId::new("warm_chain", &param),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let session = Session::with_options(
                        &set,
                        SessionOptions {
                            bound: opts,
                            cache_cells: false,
                        },
                    );
                    for q in qs {
                        session.bound(q).expect("bounded workload");
                    }
                })
            },
        );
        // The session is constructed (and its cache filled) once, outside
        // the timed loop: this measures the steady serving state — the
        // whole point of the layer. The first iteration pays the one-time
        // decomposition; criterion's warmup absorbs it.
        group.bench_with_input(
            criterion::BenchmarkId::new("session", &param),
            &queries,
            |b, qs| {
                let session = Session::with_options(
                    &set,
                    SessionOptions {
                        bound: opts,
                        cache_cells: true,
                    },
                );
                b.iter(|| {
                    for q in qs {
                        session.bound(q).expect("bounded workload");
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query_throughput);
criterion_main!(benches);
