//! Criterion bench for the Fig 12 machinery: the fractional-edge-cover
//! LP and the elastic-sensitivity formula across query shapes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pc_baselines::{elastic_chain_bound, elastic_triangle_bound};
use pc_core::join::{fec_count_bound, fec_sum_bound, JoinSpec};

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_join_bounds");
    let triangle = JoinSpec::triangle();
    group.bench_function("fec_triangle", |b| {
        b.iter(|| fec_count_bound(&triangle, &[1000.0, 1000.0, 1000.0]).expect("fec"))
    });
    for k in [3usize, 5, 8] {
        let spec = JoinSpec::chain(k);
        let counts = vec![1000.0; k];
        group.bench_with_input(BenchmarkId::new("fec_chain", k), &spec, |b, spec| {
            b.iter(|| fec_count_bound(spec, &counts).expect("fec"))
        });
    }
    group.bench_function("fec_sum_triangle", |b| {
        b.iter(|| fec_sum_bound(&triangle, 0, 5e5, &[1000.0, 1000.0, 1000.0]).expect("fec"))
    });
    group.bench_function("elastic_formulas", |b| {
        b.iter(|| {
            (
                elastic_triangle_bound(1000.0, None),
                elastic_chain_bound(1000.0, 5, None),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_joins);
criterion_main!(benches);
