//! Ablation benches for the engine's design choices (DESIGN.md):
//!
//! * **LP relaxation threshold** — exact branch & bound vs always-relax on
//!   overlapping sets. The relaxation is a hard bound either way; the
//!   question is the latency cost of exactness.
//! * **Disjoint fast path** — the greedy per-variable optimum vs running
//!   the same disjoint set through full decomposition + MILP.
//! * **Closure checking** — the extra SAT call per query.

use criterion::{criterion_group, criterion_main, Criterion};
use pc_core::{BoundEngine, BoundOptions};
use pc_datagen::intel::{cols, IntelConfig};
use pc_datagen::missing::remove_top_fraction;
use pc_datagen::{intel, pcgen, QueryGenerator};
use pc_storage::AggKind;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_ablations(c: &mut Criterion) {
    let table = intel::generate(IntelConfig {
        rows: 10_000,
        ..IntelConfig::default()
    });
    let (missing, _) = remove_top_fraction(&table, cols::LIGHT, 0.5);
    let attrs = [cols::DEVICE, cols::EPOCH];
    let qg = QueryGenerator::from_table(&missing, &attrs);
    let mut qrng = StdRng::seed_from_u64(11);
    let queries = qg.gen_workload(AggKind::Sum, cols::LIGHT, 5, &mut qrng);

    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);

    // --- exact MILP vs LP relaxation on an overlapping set -------------
    let mut rng = StdRng::seed_from_u64(3);
    let rand_set = pcgen::rand_pc(&missing, &attrs, 40, &mut rng);
    for (name, limit) in [("milp_exact", usize::MAX), ("lp_relax_always", 0)] {
        let engine = BoundEngine::with_options(
            &rand_set,
            BoundOptions {
                check_closure: false,
                lp_relax_cell_limit: limit,
                ..BoundOptions::default()
            },
        );
        group.bench_function(format!("allocation/{name}"), |b| {
            b.iter(|| {
                for q in &queries {
                    let _ = engine.bound(q).expect("bound");
                }
            })
        });
    }

    // --- greedy fast path vs full machinery on a disjoint set ----------
    let corr = pcgen::corr_pc(&missing, &attrs, 200);
    let mut corr_no_hint = corr.clone();
    corr_no_hint.set_disjoint_hint(false);
    for (name, set) in [("greedy_hint", &corr), ("full_decompose", &corr_no_hint)] {
        let engine = BoundEngine::with_options(
            set,
            BoundOptions {
                check_closure: false,
                ..BoundOptions::default()
            },
        );
        group.bench_function(format!("disjoint/{name}"), |b| {
            b.iter(|| {
                for q in &queries {
                    let _ = engine.bound(q).expect("bound");
                }
            })
        });
    }

    // --- closure check on/off -------------------------------------------
    for (name, check) in [("with_closure_check", true), ("without", false)] {
        let engine = BoundEngine::with_options(
            &corr,
            BoundOptions {
                check_closure: check,
                ..BoundOptions::default()
            },
        );
        group.bench_function(format!("closure/{name}"), |b| {
            b.iter(|| {
                for q in &queries {
                    let _ = engine.bound(q).expect("bound");
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
