//! `pc serve` — the network serving front-end over versioned sessions:
//! a std-only TCP listener speaking a line-oriented text protocol in
//! front of a multi-tenant [`pc_core::SessionRegistry`]. One versioned
//! [`pc_core::Session`] catalog per tenant; stable `cN` constraint ids
//! are the wire API; mutations interleave with in-flight reads under the
//! epoch MVCC the session layer already provides, and **every data
//! response stamps the epoch it answered from**.
//!
//! The crate has three modules: [`proto`] (the request grammar and the
//! response field helpers — the *one* place the wire format lives),
//! [`server`] (listener, connection handlers, graceful drain), and
//! [`client`] (a line client plus a scripted session runner, used by
//! `pc client`, the integration tests, and the CI smoke job).
//!
//! # Wire protocol reference
//!
//! Requests are single lines, UTF-8, `\n`-terminated. Every received
//! line gets **exactly one response**: a single `OK …` / `ERR …` line,
//! except the multi-row responses (`tenant list`, `batch`, `group-by`)
//! whose `OK` header declares `n=<k>` and is followed by exactly `k`
//! `TENANT …` / `RES …` rows. A malformed line answers
//! `ERR line <N>: <reason>` — `N` is the 1-based request count on this
//! connection — and the connection stays up.
//!
//! ## Admin verbs
//!
//! ```text
//! ping                      -> OK pong
//! tenant create <name>      -> OK created tenant=<name> epoch=0
//! tenant drop <name>        -> OK dropped tenant=<name>
//! tenant list               -> OK tenants n=<k>
//!                              TENANT <name> epoch=<e>     (k rows, sorted)
//! use <name>                -> OK using=<name> epoch=<e>
//! stats [<name>]            -> OK stats tenant=<t> epoch=<e> exact=<n>
//!                                 degraded=<n> shed=<n> shed-cache-hits=<n>
//!                                 shed-cache-misses=<n> backlog-us=<n>
//!                                 inflight=<n> draining=<true|false>
//! quit                      -> OK bye                       (closes the connection)
//! shutdown                  -> OK draining                  (starts graceful shutdown)
//! ```
//!
//! New tenants seed from the server's base constraint file (shared
//! schema, ids `c0..`); `use` scopes the connection's later query and
//! mutation verbs. `stats` surfaces the tenant's admission-gauge
//! counters and the session's cumulative shed-rejection-cache hit/miss
//! counters ([`pc_core::ShedCacheStats`]).
//!
//! ## Query verbs
//!
//! Each may carry per-request budget directives — `@timeout-ms=N`,
//! `@sat-cap=N`, `@node-cap=N` — between the verb and its argument;
//! they override the server-wide caps field-wise, validated by the same
//! shared parser as `pc batch` ([`pc_budget::caps`]): zero, negative,
//! and overflowing values are rejected at parse time.
//!
//! ```text
//! bound [@dirs] <sql>       -> OK bound epoch=<e> range=[<lo>,<hi>] closed=<b>
//!                                 degraded=<b> trip=<reason|-> verdict=<v>
//!                                 queue-us=<n> backlog-us=<n> est-us=<n>
//!                           -> OK bound epoch=<e> empty      (no missing row can match)
//! batch [@dirs] <sql> ;; <sql> …
//!                           -> OK batch epoch=<e> n=<k>
//!                              RES <i> range=[…] …           (one row per query, in order;
//!                              RES <i> empty                  a panicked or errored query
//!                              RES <i> error: <msg>           answers in its row, siblings
//!                                                             unaffected)
//! group-by [@dirs] <column> <sql>
//!                           -> OK group-by epoch=<e> n=<k>
//!                              RES key=<label> range=[…] …   (one row per group key)
//! ```
//!
//! `verdict` is the admission outcome (`exact` / `degraded` / `shed`)
//! and `queue-us`/`backlog-us`/`est-us` serialize the
//! [`pc_core::SchedReport`]; `trip` names the tripped budget cap (`-`
//! when untripped). Degraded and shed answers are **sound**: their range
//! contains the exact range. Queries fan onto the work-stealing pool
//! through the tenant's own admission gauge, so one tenant's overload
//! sheds its queries, not its neighbors'.
//!
//! ## Mutation verbs
//!
//! ```text
//! + <constraint in pc_core::dsl notation>
//!                           -> OK added=<cN> epoch=<e>
//! - <cN>                    -> OK retired=<cN> epoch=<e>
//! replace <cN> <constraint> -> OK replaced=<cN> added=<cM> epoch=<e>
//! ```
//!
//! Mutations serialize per tenant and produce a new epoch; queries
//! already in flight keep answering from the epoch they pinned
//! (snapshot isolation — property-tested end-to-end over the socket in
//! `tests/serve_net.rs`). The stamped epoch is captured inside the
//! mutation lock, so concurrent mutations can never misattribute it.
//!
//! ## Connection bounds and shutdown
//!
//! Connections are damage-bounded: a line longer than the configured
//! maximum answers `ERR` (rest of the line discarded), a read stalled
//! mid-line longer than the read timeout closes that connection only
//! (the slow-loris bound — see the `serve::read_stall` fault site), and
//! a query panic answers `ERR` on its own connection while every other
//! tenant and connection keeps serving. `shutdown` (or
//! [`server::ServerHandle::shutdown`]) starts the graceful drain: new
//! work is rejected with `ERR … draining`, every in-flight query's
//! [`pc_core::CancelToken`] fires (they finish early with sound degraded
//! answers), and [`server::Server::run`] returns once drained — or once
//! the drain deadline expires, stalled connections notwithstanding.

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod server;

pub use client::{run_script, Connection, Response, ScriptOutcome};
pub use proto::Request;
pub use server::{ServeConfig, Server, ServerHandle};
