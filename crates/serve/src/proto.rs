//! The wire grammar: request parsing and response field formatting. The
//! server and the client both go through this module, so the two ends
//! cannot drift — a response the server can emit is a response the
//! client helpers can read back. See the crate docs for the full
//! protocol reference.

use pc_budget::caps::{parse_line_caps, BudgetCaps};
use pc_core::{BoundReport, ConstraintId};

/// One parsed request line. Query verbs carry their per-request budget
/// directive overrides; SQL / DSL payloads stay as text here and are
/// resolved against the server's table (schema + categorical
/// dictionaries) at execution.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `ping` — liveness probe.
    Ping,
    /// `tenant create <name>` — register a tenant seeded from the base
    /// catalog.
    TenantCreate(String),
    /// `tenant drop <name>` — unregister a tenant.
    TenantDrop(String),
    /// `tenant list` — sorted tenant listing with epochs.
    TenantList,
    /// `use <name>` — scope this connection's later verbs to the tenant.
    Use(String),
    /// `stats [<name>]` — admission + shed-cache counters (current
    /// tenant when no name given).
    Stats(Option<String>),
    /// `bound [@dirs] <sql>` — one aggregate query.
    Bound {
        /// Per-request budget overrides.
        caps: BudgetCaps,
        /// The SQL text.
        sql: String,
    },
    /// `batch [@dirs] <sql> ;; <sql> …` — a snapshot-isolated batch.
    Batch {
        /// Per-request budget overrides (one budget for the batch).
        caps: BudgetCaps,
        /// The SQL texts, in answer order.
        sqls: Vec<String>,
    },
    /// `group-by [@dirs] <column> <sql>` — one bound per group key.
    GroupBy {
        /// Per-request budget overrides.
        caps: BudgetCaps,
        /// The grouping column name.
        column: String,
        /// The SQL text of the base query.
        sql: String,
    },
    /// `+ <constraint>` — admit a constraint (DSL notation).
    Add(String),
    /// `- <cN>` — retire a constraint.
    Retire(ConstraintId),
    /// `replace <cN> <constraint>` — swap a constraint in one epoch.
    Replace(ConstraintId, String),
    /// `shutdown` — start the server's graceful drain.
    Shutdown,
    /// `quit` — close this connection.
    Quit,
}

/// Tenant names are single tokens that cannot collide with response
/// grammar: alphanumeric plus `-`/`_`/`.`.
fn parse_tenant_name(raw: &str) -> Result<String, String> {
    let name = raw.trim();
    if name.is_empty() {
        return Err("tenant name required".into());
    }
    if !name
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'))
    {
        return Err(format!(
            "tenant name `{name}` may only contain letters, digits, `-`, `_`, `.`"
        ));
    }
    Ok(name.to_string())
}

/// Parse one request line (already newline-stripped, non-empty after
/// trimming). Errors are human-readable reasons for the `ERR line N:`
/// response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((verb, rest)) => (verb, rest.trim()),
        None => (line, ""),
    };
    let bare = |request: Request| {
        if rest.is_empty() {
            Ok(request)
        } else {
            Err(format!("`{verb}` takes no argument"))
        }
    };
    match verb {
        "ping" => bare(Request::Ping),
        "quit" => bare(Request::Quit),
        "shutdown" => bare(Request::Shutdown),
        "tenant" => {
            let (sub, name) = match rest.split_once(char::is_whitespace) {
                Some((sub, name)) => (sub, name.trim()),
                None => (rest, ""),
            };
            match sub {
                "create" => Ok(Request::TenantCreate(parse_tenant_name(name)?)),
                "drop" => Ok(Request::TenantDrop(parse_tenant_name(name)?)),
                "list" if name.is_empty() => Ok(Request::TenantList),
                "list" => Err("`tenant list` takes no argument".into()),
                other => Err(format!("unknown tenant verb `{other}` (create/drop/list)")),
            }
        }
        "use" => Ok(Request::Use(parse_tenant_name(rest)?)),
        "stats" => {
            if rest.is_empty() {
                Ok(Request::Stats(None))
            } else {
                Ok(Request::Stats(Some(parse_tenant_name(rest)?)))
            }
        }
        "bound" => {
            let (caps, sql) = parse_line_caps(rest)?;
            Ok(Request::Bound {
                caps,
                sql: sql.to_string(),
            })
        }
        "batch" => {
            let (caps, tail) = parse_line_caps(rest)?;
            let sqls: Vec<String> = tail
                .split(";;")
                .map(|s| s.trim().to_string())
                .collect();
            if sqls.iter().any(String::is_empty) {
                return Err("batch: empty query between `;;` separators".into());
            }
            Ok(Request::Batch { caps, sqls })
        }
        "group-by" => {
            let (caps, tail) = parse_line_caps(rest)?;
            let (column, sql) = tail
                .split_once(char::is_whitespace)
                .ok_or("group-by: expected `group-by [@dirs] <column> <sql>`")?;
            let sql = sql.trim();
            if sql.is_empty() {
                return Err("group-by: missing the query after the column".into());
            }
            Ok(Request::GroupBy {
                caps,
                column: column.to_string(),
                sql: sql.to_string(),
            })
        }
        "+" => {
            if rest.is_empty() {
                Err("`+` needs a constraint in the dsl notation".into())
            } else {
                Ok(Request::Add(rest.to_string()))
            }
        }
        "-" => rest
            .parse::<ConstraintId>()
            .map(Request::Retire)
            .map_err(|e| e.to_string()),
        "replace" => {
            let (id, pc) = rest
                .split_once(char::is_whitespace)
                .ok_or("replace: expected `replace <cN> <constraint>`")?;
            let id = id.parse::<ConstraintId>().map_err(|e| e.to_string())?;
            let pc = pc.trim();
            if pc.is_empty() {
                return Err("replace: missing the replacement constraint".into());
            }
            Ok(Request::Replace(id, pc.to_string()))
        }
        other => Err(format!(
            "unknown verb `{other}` (ping/tenant/use/stats/bound/batch/group-by/+/-/replace/shutdown/quit)"
        )),
    }
}

// ----------------------------------------------------------------------
// Response formatting / parsing helpers
// ----------------------------------------------------------------------

/// The per-answer response fields shared by `bound`, `batch` rows, and
/// `group-by` rows: the range, the soundness stamps, and the serialized
/// scheduling report.
pub fn report_fields(report: &BoundReport) -> String {
    let trip = report
        .trip
        .map(|t| t.to_string())
        .unwrap_or_else(|| "-".into());
    let (verdict, queue_us, backlog_us, est_us) = match &report.sched {
        Some(s) => (
            s.verdict.to_string(),
            s.queue_wait.as_micros(),
            s.backlog.as_micros(),
            s.estimated_cost.as_micros(),
        ),
        None => ("exact".to_string(), 0, 0, 0),
    };
    format!(
        "range=[{},{}] closed={} degraded={} trip={} verdict={} queue-us={} backlog-us={} est-us={}",
        report.range.lo,
        report.range.hi,
        report.closed,
        report.degraded,
        trip,
        verdict,
        queue_us,
        backlog_us,
        est_us,
    )
}

/// Extract a `key=value` field from a response line (`None` when the
/// key is absent). Fields are whitespace-separated tokens.
pub fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    line.split_whitespace()
        .find_map(|token| token.strip_prefix(key)?.strip_prefix('='))
}

/// Parse the `range=[lo,hi]` field of a response line. Infinities render
/// as `inf`/`-inf` and parse back exactly.
pub fn parse_range(line: &str) -> Option<(f64, f64)> {
    let raw = field(line, "range")?;
    let inner = raw.strip_prefix('[')?.strip_suffix(']')?;
    let (lo, hi) = inner.split_once(',')?;
    Some((lo.parse().ok()?, hi.parse().ok()?))
}

/// The number of follow-up rows a response header declares (`n=<k>`),
/// 0 for single-line responses.
pub fn declared_rows(header: &str) -> usize {
    field(header, "n").and_then(|n| n.parse().ok()).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_verbs_with_caps() {
        let req = parse_request("bound @timeout-ms=50 SELECT COUNT(*)").unwrap();
        match req {
            Request::Bound { caps, sql } => {
                assert_eq!(caps.timeout_ms, Some(50));
                assert_eq!(sql, "SELECT COUNT(*)");
            }
            other => panic!("{other:?}"),
        }
        let req = parse_request("batch SELECT COUNT(*) ;; SELECT SUM(v)").unwrap();
        match req {
            Request::Batch { sqls, .. } => assert_eq!(sqls.len(), 2),
            other => panic!("{other:?}"),
        }
        let req = parse_request("group-by @sat-cap=9 region SELECT SUM(v)").unwrap();
        match req {
            Request::GroupBy { caps, column, sql } => {
                assert_eq!(caps.sat_cap, Some(9));
                assert_eq!(column, "region");
                assert_eq!(sql, "SELECT SUM(v)");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_admin_and_mutation_verbs() {
        assert_eq!(parse_request("ping").unwrap(), Request::Ping);
        assert_eq!(
            parse_request("tenant create acme").unwrap(),
            Request::TenantCreate("acme".into())
        );
        assert_eq!(parse_request("tenant list").unwrap(), Request::TenantList);
        assert_eq!(parse_request("stats").unwrap(), Request::Stats(None));
        assert!(matches!(parse_request("- c3").unwrap(), Request::Retire(_)));
        assert!(matches!(
            parse_request("replace c1 TRUE => x <= 5, (0, 10)").unwrap(),
            Request::Replace(..)
        ));
        assert!(matches!(
            parse_request("+ TRUE => x <= 5, (0, 10)").unwrap(),
            Request::Add(_)
        ));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_request("frobnicate").is_err());
        assert!(parse_request("ping extra").is_err());
        assert!(parse_request("tenant create bad name").is_err());
        assert!(parse_request("bound @timeout-ms=0 SELECT COUNT(*)").is_err());
        assert!(parse_request("bound").is_err());
        assert!(parse_request("batch SELECT COUNT(*) ;; ").is_err());
        assert!(parse_request("- notanid").is_err());
    }

    #[test]
    fn field_helpers_roundtrip() {
        let line = "OK bound epoch=7 range=[1.5,inf] closed=true degraded=false trip=- verdict=exact queue-us=12 backlog-us=0 est-us=3";
        assert_eq!(field(line, "epoch"), Some("7"));
        assert_eq!(field(line, "verdict"), Some("exact"));
        let (lo, hi) = parse_range(line).unwrap();
        assert_eq!(lo, 1.5);
        assert!(hi.is_infinite() && hi > 0.0);
        assert_eq!(declared_rows("OK batch epoch=2 n=4"), 4);
        assert_eq!(declared_rows(line), 0);
    }
}
