//! The listener: thread-per-connection over a non-blocking accept loop,
//! a shared [`SessionRegistry`], and the graceful-drain protocol. See
//! the crate docs for the wire reference and the shutdown guarantees.

use crate::proto::{self, Request};
use pc_budget::caps::BudgetCaps;
use pc_budget::QueryBudget;
use pc_core::{dsl, BoundError, PcSet, Session, SessionOptions, SessionRegistry};
use pc_storage::{parse_query, Table};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The tenant every connection starts scoped to, seeded from the
/// server's base catalog at bind.
pub const DEFAULT_TENANT: &str = "default";

/// Server configuration: engine/session knobs, server-wide budget caps,
/// and the per-connection damage bounds.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Session/engine knobs applied to every tenant's catalog.
    pub options: SessionOptions,
    /// Server-wide budget caps; per-request `@` directives override
    /// field-wise.
    pub caps: BudgetCaps,
    /// How long a connection may stall **mid-line** before it is closed
    /// (the slow-loris bound). Idle connections between requests are not
    /// subject to it.
    pub read_timeout: Duration,
    /// Accept/read poll tick — also how quickly connections notice a
    /// drain.
    pub poll_interval: Duration,
    /// Maximum request line length; longer lines answer `ERR` and the
    /// remainder is discarded.
    pub max_line_bytes: usize,
    /// Graceful-shutdown drain deadline: how long [`Server::run`] waits
    /// for in-flight queries (cancelled at drain start) and connection
    /// threads before detaching stragglers.
    pub drain: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            options: SessionOptions::default(),
            caps: BudgetCaps::default(),
            read_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_millis(10),
            max_line_bytes: 64 * 1024,
            drain: Duration::from_secs(5),
        }
    }
}

/// Everything the connection handlers share.
struct Shared {
    table: Table,
    base: PcSet,
    config: ServeConfig,
    registry: SessionRegistry,
    shutdown: AtomicBool,
}

/// A bound, not-yet-running server. [`Server::run`] blocks serving until
/// shutdown; grab a [`ServerHandle`] first to trigger shutdown from
/// another thread (the wire `shutdown` verb does the same).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

/// Cloneable remote control for a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Start the graceful drain: stop accepting, reject new queries,
    /// cancel in-flight ones. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been triggered.
    pub fn is_shutdown(&self) -> bool {
        self.shared.shutdown.load(Ordering::SeqCst)
    }
}

impl Server {
    /// Bind the listener and seed the registry with the `default` tenant
    /// built from `base` (later `tenant create` verbs seed from the same
    /// base — one schema per server, many catalogs).
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        table: Table,
        base: PcSet,
        config: ServeConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let registry = SessionRegistry::new();
        registry
            .create(
                DEFAULT_TENANT,
                Session::with_options(base.clone(), config.options),
            )
            .expect("empty registry cannot collide");
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                table,
                base,
                config,
                registry,
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (useful after binding port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A shutdown handle, cloneable across threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Serve until shutdown, then drain: reject new queries, cancel
    /// in-flight ones via their registered [`pc_core::CancelToken`]s,
    /// and wait up to the drain deadline for connections to finish
    /// writing their (degraded but sound) responses. Returns even if a
    /// stalled connection never exits — stragglers are detached, which
    /// is exactly the bounded-damage guarantee the slow-loris test pins.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, shared } = self;
        let mut conns: Vec<thread::JoinHandle<()>> = Vec::new();
        while !shared.shutdown.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&shared);
                    conns.push(thread::spawn(move || {
                        // Connection-level io errors tear down that
                        // connection only.
                        let _ = serve_connection(stream, &shared);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(shared.config.poll_interval);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            conns.retain(|h| !h.is_finished());
        }
        shared.registry.begin_drain();
        let deadline = Instant::now() + shared.config.drain;
        let drained = shared.registry.drained_within(shared.config.drain);
        while !conns.is_empty() && Instant::now() < deadline {
            conns.retain(|h| !h.is_finished());
            if conns.is_empty() {
                break;
            }
            thread::sleep(shared.config.poll_interval);
        }
        // Anything still running is a stalled read or a straggling write;
        // its thread is detached and dies with the process. The drain
        // outcome is observable through the registry, not an error —
        // shutdown must complete either way.
        let _ = drained;
        Ok(())
    }
}

/// Per-connection state: the read loop with its damage bounds, then one
/// response per received line.
fn serve_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    stream.set_read_timeout(Some(shared.config.poll_interval))?;
    stream.set_nodelay(true).ok();
    let mut reader = &stream;
    let mut writer = &stream;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut lineno: u64 = 0;
    let mut tenant = String::from(DEFAULT_TENANT);
    // Set once the current line overflowed `max_line_bytes`: the ERR was
    // already written, the rest of the line drops silently.
    let mut discarding = false;
    let mut partial_since: Option<Instant> = None;
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Draining: in-flight responses were already written by the
            // time we get back here; pending partial lines are dead.
            return Ok(());
        }
        let n = match reader.read(&mut chunk) {
            Ok(0) => return Ok(()),
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if let Some(since) = partial_since {
                    if since.elapsed() > shared.config.read_timeout {
                        // Slow loris: a half-sent line held past the
                        // read timeout. Close this connection; nothing
                        // else is affected.
                        return Ok(());
                    }
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        #[cfg(feature = "fault")]
        pc_budget::fault::point("serve::read_stall");
        let mut rest = &chunk[..n];
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(pos);
            rest = &tail[1..];
            if discarding {
                // The terminating newline of an over-long line: its ERR
                // already went out when it overflowed.
                discarding = false;
                buf.clear();
                continue;
            }
            buf.extend_from_slice(head);
            let line = String::from_utf8_lossy(&buf).into_owned();
            buf.clear();
            lineno += 1;
            let (response, action) = respond(shared, &mut tenant, lineno, &line);
            writer.write_all(response.as_bytes())?;
            writer.write_all(b"\n")?;
            writer.flush()?;
            match action {
                Action::Continue => {}
                Action::Close => return Ok(()),
                Action::Drain => {
                    shared.shutdown.store(true, Ordering::SeqCst);
                    return Ok(());
                }
            }
        }
        if discarding {
            // Still inside the over-long line; drop the bytes.
        } else {
            buf.extend_from_slice(rest);
            if buf.len() > shared.config.max_line_bytes {
                lineno += 1;
                let response = format!(
                    "ERR line {lineno}: request exceeds {} bytes",
                    shared.config.max_line_bytes
                );
                writer.write_all(response.as_bytes())?;
                writer.write_all(b"\n")?;
                writer.flush()?;
                buf.clear();
                discarding = true;
            }
        }
        partial_since = if buf.is_empty() && !discarding {
            None
        } else {
            Some(partial_since.unwrap_or_else(Instant::now))
        };
    }
}

/// What the connection loop does after writing a response.
enum Action {
    Continue,
    Close,
    Drain,
}

/// Answer one received line. Never panics the connection: query panics
/// are caught per request, parse errors answer `ERR line N:`.
fn respond(shared: &Shared, tenant: &mut String, lineno: u64, line: &str) -> (String, Action) {
    let line = line.trim();
    if line.is_empty() {
        return (
            format!("ERR line {lineno}: empty request"),
            Action::Continue,
        );
    }
    match proto::parse_request(line) {
        Err(e) => (format!("ERR line {lineno}: {e}"), Action::Continue),
        Ok(request) => execute(shared, tenant, lineno, request),
    }
}

/// Look up the connection's tenant; sessions are fetched per request so
/// a dropped tenant fails the *next* request, not in-flight ones.
fn tenant_session(
    shared: &Shared,
    tenant: &str,
    lineno: u64,
) -> Result<Arc<Session>, (String, Action)> {
    shared.registry.get(tenant).ok_or_else(|| {
        (
            format!("ERR line {lineno}: unknown tenant `{tenant}`"),
            Action::Continue,
        )
    })
}

fn execute(
    shared: &Shared,
    tenant: &mut String,
    lineno: u64,
    request: Request,
) -> (String, Action) {
    let registry = &shared.registry;
    let err = |msg: String| (format!("ERR line {lineno}: {msg}"), Action::Continue);
    match request {
        Request::Ping => ("OK pong".to_string(), Action::Continue),
        Request::Quit => ("OK bye".to_string(), Action::Close),
        Request::Shutdown => ("OK draining".to_string(), Action::Drain),
        Request::TenantCreate(name) => {
            if registry.is_draining() {
                return err("server is draining".into());
            }
            match registry.create(
                &name,
                Session::with_options(shared.base.clone(), shared.config.options),
            ) {
                Ok(_) => (
                    format!("OK created tenant={name} epoch=0"),
                    Action::Continue,
                ),
                Err(e) => err(e.to_string()),
            }
        }
        Request::TenantDrop(name) => {
            if registry.drop_tenant(&name) {
                (format!("OK dropped tenant={name}"), Action::Continue)
            } else {
                err(format!("unknown tenant `{name}`"))
            }
        }
        Request::TenantList => {
            let names = registry.names();
            let mut out = format!("OK tenants n={}", names.len());
            for name in names {
                let epoch = registry.get(&name).map(|s| s.epoch()).unwrap_or(0);
                out.push_str(&format!("\nTENANT {name} epoch={epoch}"));
            }
            (out, Action::Continue)
        }
        Request::Use(name) => match registry.get(&name) {
            Some(session) => {
                *tenant = name.clone();
                (
                    format!("OK using={name} epoch={}", session.epoch()),
                    Action::Continue,
                )
            }
            None => err(format!("unknown tenant `{name}`")),
        },
        Request::Stats(name) => {
            let name = name.unwrap_or_else(|| tenant.clone());
            let session = match tenant_session(shared, &name, lineno) {
                Ok(s) => s,
                Err(r) => return r,
            };
            let pressure = session.pressure().stats();
            let shed = session.shed_cache_stats();
            (
                format!(
                    "OK stats tenant={name} epoch={} exact={} degraded={} shed={} \
                     shed-cache-hits={} shed-cache-misses={} backlog-us={} inflight={} draining={}",
                    session.epoch(),
                    pressure.admitted_exact,
                    pressure.admitted_degraded,
                    pressure.shed,
                    shed.hits,
                    shed.misses,
                    session.pressure().backlog().as_micros(),
                    registry.inflight(),
                    registry.is_draining(),
                ),
                Action::Continue,
            )
        }
        Request::Bound { caps, sql } => {
            let session = match tenant_session(shared, tenant, lineno) {
                Ok(s) => s,
                Err(r) => return r,
            };
            let budget = shared.config.caps.overridden_by(caps).armed_budget();
            let Some(_guard) = registry.begin_query(&budget) else {
                return err("server is draining".into());
            };
            let query = match parse_query(&shared.table, &sql) {
                Ok(q) => q,
                Err(e) => return err(e.to_string()),
            };
            let ticket = session.admit(&query, &budget);
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                session.bound_ticketed_stamped(&query, &budget, ticket)
            }));
            match outcome {
                Ok((epoch, Ok(report))) => (
                    format!("OK bound epoch={epoch} {}", proto::report_fields(&report)),
                    Action::Continue,
                ),
                Ok((epoch, Err(BoundError::EmptyAggregate))) => {
                    (format!("OK bound epoch={epoch} empty"), Action::Continue)
                }
                Ok((_, Err(e))) => err(e.to_string()),
                Err(_) => err("query panicked (tenant state isolated, connection kept)".into()),
            }
        }
        Request::Batch { caps, sqls } => {
            let session = match tenant_session(shared, tenant, lineno) {
                Ok(s) => s,
                Err(r) => return r,
            };
            let budget = shared.config.caps.overridden_by(caps).armed_budget();
            let Some(_guard) = registry.begin_query(&budget) else {
                return err("server is draining".into());
            };
            let mut queries = Vec::with_capacity(sqls.len());
            for sql in &sqls {
                match parse_query(&shared.table, sql) {
                    Ok(q) => queries.push(q),
                    Err(e) => return err(format!("`{sql}`: {e}")),
                }
            }
            // `bound_many_stamped` already panics one query at a time
            // (`BoundError::Panicked`); the outer boundary catches
            // epoch-build panics so the connection always answers.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                session.bound_many_stamped(&queries, &budget)
            }));
            let (epoch, reports) = match outcome {
                Ok(pair) => pair,
                Err(_) => {
                    return err("batch panicked (tenant state isolated, connection kept)".into())
                }
            };
            let mut out = format!("OK batch epoch={epoch} n={}", reports.len());
            for (i, report) in reports.iter().enumerate() {
                match report {
                    Ok(r) => out.push_str(&format!("\nRES {i} {}", proto::report_fields(r))),
                    Err(BoundError::EmptyAggregate) => out.push_str(&format!("\nRES {i} empty")),
                    Err(e) => out.push_str(&format!("\nRES {i} error: {e}")),
                }
            }
            (out, Action::Continue)
        }
        Request::GroupBy { caps, column, sql } => {
            let session = match tenant_session(shared, tenant, lineno) {
                Ok(s) => s,
                Err(r) => return r,
            };
            let budget = shared.config.caps.overridden_by(caps).armed_budget();
            let Some(_guard) = registry.begin_query(&budget) else {
                return err("server is draining".into());
            };
            let query = match parse_query(&shared.table, &sql) {
                Ok(q) => q,
                Err(e) => return err(e.to_string()),
            };
            let Some(attr) = shared.table.schema().index_of(&column) else {
                return err(format!("group-by: no column named `{column}`"));
            };
            let keys: Vec<f64> = match shared.table.dictionary(attr) {
                Some(dict) => (0..dict.len()).map(|c| c as f64).collect(),
                None => {
                    let mut vals: Vec<f64> = (0..shared.table.len())
                        .map(|r| shared.table.encoded(r, attr))
                        .filter(|v| !v.is_nan())
                        .collect();
                    vals.sort_by(f64::total_cmp);
                    vals.dedup();
                    vals
                }
            };
            if keys.is_empty() {
                return err("group-by: no group keys found in the data".into());
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                session.bound_group_by_stamped(&query, attr, keys, &budget)
            }));
            let (epoch, groups) = match outcome {
                Ok(pair) => pair,
                Err(_) => {
                    return err("group-by panicked (tenant state isolated, connection kept)".into())
                }
            };
            let mut out = format!("OK group-by epoch={epoch} n={}", groups.len());
            for group in &groups {
                let label = shared
                    .table
                    .dictionary(attr)
                    .and_then(|d| d.label(group.key as u32))
                    .map(str::to_string)
                    .unwrap_or_else(|| group.key.to_string());
                match &group.report {
                    Ok(r) => {
                        out.push_str(&format!("\nRES key={label} {}", proto::report_fields(r)))
                    }
                    Err(BoundError::EmptyAggregate) => {
                        out.push_str(&format!("\nRES key={label} empty"))
                    }
                    Err(e) => out.push_str(&format!("\nRES key={label} error: {e}")),
                }
            }
            (out, Action::Continue)
        }
        Request::Add(text) => {
            let session = match tenant_session(shared, tenant, lineno) {
                Ok(s) => s,
                Err(r) => return r,
            };
            let budget = shared.config.caps.armed_budget();
            let Some(_guard) = registry.begin_query(&budget) else {
                return err("server is draining".into());
            };
            let pc = match dsl::parse_constraint(&shared.table, &text) {
                Ok(pc) => pc,
                Err(e) => return err(e.to_string()),
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                session.add_constraint_stamped(pc, &budget)
            }));
            match outcome {
                Ok((id, epoch)) => (format!("OK added={id} epoch={epoch}"), Action::Continue),
                Err(_) => err("mutation panicked (tenant state isolated)".into()),
            }
        }
        Request::Retire(id) => {
            let session = match tenant_session(shared, tenant, lineno) {
                Ok(s) => s,
                Err(r) => return r,
            };
            let budget = QueryBudget::armed();
            let Some(_guard) = registry.begin_query(&budget) else {
                return err("server is draining".into());
            };
            match session.retire_constraint_stamped(id) {
                Ok(epoch) => (format!("OK retired={id} epoch={epoch}"), Action::Continue),
                Err(e) => err(e.to_string()),
            }
        }
        Request::Replace(id, text) => {
            let session = match tenant_session(shared, tenant, lineno) {
                Ok(s) => s,
                Err(r) => return r,
            };
            let budget = shared.config.caps.armed_budget();
            let Some(_guard) = registry.begin_query(&budget) else {
                return err("server is draining".into());
            };
            let pc = match dsl::parse_constraint(&shared.table, &text) {
                Ok(pc) => pc,
                Err(e) => return err(e.to_string()),
            };
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                session.replace_constraint_stamped(id, pc, &budget)
            }));
            match outcome {
                Ok(Ok((new_id, epoch))) => (
                    format!("OK replaced={id} added={new_id} epoch={epoch}"),
                    Action::Continue,
                ),
                Ok(Err(e)) => err(e.to_string()),
                Err(_) => err("mutation panicked (tenant state isolated)".into()),
            }
        }
    }
}
