//! The line client: one request in, one response (header + declared
//! rows) out. Used by `pc client`, the integration tests, and the CI
//! smoke script runner ([`run_script`]).

use crate::proto;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// One protocol connection. Requests and responses are strictly paired,
/// so a `send` always returns this request's response.
pub struct Connection {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

/// One response: the `OK …` / `ERR …` header plus the `TENANT …` /
/// `RES …` rows its `n=<k>` field declared (empty for single-line
/// responses).
#[derive(Debug, Clone)]
pub struct Response {
    /// The header line.
    pub header: String,
    /// The declared follow-up rows, in order.
    pub rows: Vec<String>,
}

impl Response {
    /// Whether the header is an `OK`.
    pub fn is_ok(&self) -> bool {
        self.header.starts_with("OK")
    }

    /// A `key=value` field of the header (see [`proto::field`]).
    pub fn field(&self, key: &str) -> Option<&str> {
        proto::field(&self.header, key)
    }

    /// The stamped epoch, when the header carries one.
    pub fn epoch(&self) -> Option<u64> {
        self.field("epoch").and_then(|e| e.parse().ok())
    }

    /// The header's `range=[lo,hi]` field.
    pub fn range(&self) -> Option<(f64, f64)> {
        proto::parse_range(&self.header)
    }
}

impl Connection {
    /// Connect to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Connection> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true).ok();
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Connection { writer, reader })
    }

    /// Bound how long [`Connection::send`] may wait for a response line
    /// (e.g. so a test against a draining server fails fast instead of
    /// hanging).
    pub fn set_response_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Send one request line, read its response (header + declared
    /// rows). An empty `line` sends an empty request — the server
    /// answers `ERR … empty request`, keeping the pairing.
    pub fn send(&mut self, line: &str) -> io::Result<Response> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// The underlying stream (write half) — for tests that push raw
    /// bytes below the line protocol (half lines, over-long lines).
    pub fn raw_stream(&mut self) -> &mut TcpStream {
        &mut self.writer
    }

    /// Read one response without sending a request first — pairs with
    /// bytes pushed through [`Connection::raw_stream`].
    pub fn read_response(&mut self) -> io::Result<Response> {
        let header = self.read_line()?;
        let mut rows = Vec::new();
        for _ in 0..proto::declared_rows(&header) {
            rows.push(self.read_line()?);
        }
        Ok(Response { header, rows })
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-response",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }
}

/// What a scripted session observed (exit-code material for `pc
/// client --script` and the CI smoke job).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScriptOutcome {
    /// Requests sent.
    pub requests: usize,
    /// Expectation mismatches: an `OK` where the script expected `ERR`
    /// (`!`-prefixed line) or an `ERR` where it expected `OK`.
    pub mismatches: usize,
}

impl ScriptOutcome {
    /// Whether every expectation held.
    pub fn passed(&self) -> bool {
        self.mismatches == 0
    }
}

/// Run a scripted session: each non-blank, non-`#` line is sent as one
/// request and its response echoed to `out`. A line prefixed `!` is a
/// **negative expectation** — the request must answer `ERR` (this is
/// how the smoke script proves malformed lines don't kill the
/// connection); every other line must answer `OK`. Mismatches are
/// counted, echoed as `MISMATCH …`, and reflected in the outcome. The
/// script stops after `quit` or `shutdown` (the server side closes).
pub fn run_script<A: ToSocketAddrs>(
    addr: A,
    script: &str,
    out: &mut dyn Write,
) -> io::Result<ScriptOutcome> {
    let mut conn = Connection::connect(addr)?;
    let mut outcome = ScriptOutcome::default();
    for raw in script.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (expect_err, request) = match line.strip_prefix('!') {
            Some(rest) => (true, rest.trim()),
            None => (false, line),
        };
        let response = conn.send(request)?;
        outcome.requests += 1;
        writeln!(out, "{}", response.header)?;
        for row in &response.rows {
            writeln!(out, "{row}")?;
        }
        if response.is_ok() == expect_err {
            outcome.mismatches += 1;
            let want = if expect_err { "ERR" } else { "OK" };
            writeln!(out, "MISMATCH line expected {want}: {request}")?;
        }
        if request == "quit" || request == "shutdown" {
            break;
        }
    }
    Ok(outcome)
}
