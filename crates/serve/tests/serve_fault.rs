//! Fault-injected read-path tests (the `fault` cargo feature): arm the
//! `serve::read_stall` site and prove a connection stalled *inside the
//! server's read path* cannot stall other tenants' queries or hold
//! shutdown past the drain deadline. Lives in its own test binary: the
//! fault registry is global, and an armed plan must not be consumed by
//! an unrelated test's connection.
#![cfg(feature = "fault")]

use pc_core::budget::fault;
use pc_core::{dsl, PcSet, SessionOptions};
use pc_predicate::{AttrType, Schema};
use pc_serve::{Connection, ServeConfig, Server};
use pc_storage::{table_from_csv, Table};
use std::io::Write;
use std::thread;
use std::time::{Duration, Instant};

fn fixture_table() -> Table {
    let schema = Schema::new(vec![("utc", AttrType::Int), ("price", AttrType::Float)]);
    table_from_csv(schema, "utc,price\n1,3.02\n2,6.71\n").unwrap()
}

struct Disarm;
impl Drop for Disarm {
    fn drop(&mut self) {
        fault::disarm_all();
    }
}

#[test]
fn read_stall_is_contained_to_its_connection() {
    let _guard = Disarm;
    let table = fixture_table();
    let base = dsl::parse_pcset(&table, "TRUE => price BETWEEN 0 AND 10, (0, 50)\n").unwrap();
    let config = ServeConfig {
        options: SessionOptions {
            admission: false,
            ..SessionOptions::default()
        },
        poll_interval: Duration::from_millis(5),
        drain: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let server = Server::bind("127.0.0.1:0", table, base, config).unwrap();
    let addr = server.local_addr().unwrap();
    let join = thread::spawn(move || server.run().unwrap());

    // The victim connects first; the stall is armed only once its bytes
    // are the next thing any connection thread will read, so the plan
    // fires inside *its* read path.
    let mut victim = Connection::connect(addr).unwrap();
    fault::arm(
        "serve::read_stall",
        fault::Plan::StallAfter(0, Duration::from_secs(3)),
    );
    victim.raw_stream().write_all(b"ping\n").unwrap();
    victim.raw_stream().flush().unwrap();
    // Give the victim's connection thread time to read and enter the
    // injected sleep (poll tick is 5ms), so the plan is consumed.
    thread::sleep(Duration::from_millis(200));

    // An unrelated connection is served while the victim's thread sleeps.
    let mut other = Connection::connect(addr).unwrap();
    other
        .set_response_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let resp = other.send("bound SELECT COUNT(*)").unwrap();
    assert!(resp.is_ok(), "{}", resp.header);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "a read-stalled peer delayed an unrelated query by {:?}",
        started.elapsed()
    );

    // Shutdown completes within the drain deadline even though the
    // victim's connection thread is still asleep inside its read path.
    let started = Instant::now();
    assert!(other.send("shutdown").unwrap().is_ok());
    join.join().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "shutdown took {:?} despite a 300ms drain deadline",
        started.elapsed()
    );
}
