//! Socket-level integration tests for `pc serve`: the snapshot-isolation
//! guarantee under concurrent mutation, the slow-loris damage bound, and
//! the per-connection protocol bounds — all through real TCP connections
//! against a running [`Server`].

use pc_core::{dsl, PcSet, QueryBudget, Session, SessionOptions};
use pc_predicate::{AttrType, Schema};
use pc_serve::{Connection, ServeConfig, Server};
use pc_storage::{parse_query, table_from_csv, Table};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

fn fixture_table() -> Table {
    let schema = Schema::new(vec![
        ("utc", AttrType::Int),
        ("branch", AttrType::Cat),
        ("price", AttrType::Float),
    ]);
    table_from_csv(
        schema,
        "utc,branch,price\n\
         1,Chicago,3.02\n\
         2,New York,6.71\n\
         3,Chicago,18.99\n",
    )
    .unwrap()
}

fn base_set(table: &Table) -> PcSet {
    dsl::parse_pcset(table, "TRUE => price BETWEEN 0 AND 149.99, (0, 100)\n").unwrap()
}

/// Exact-only options: admission stays off so every response is the
/// engine's exact range and can be compared against the oracle verbatim.
fn exact_options() -> SessionOptions {
    SessionOptions {
        admission: false,
        ..SessionOptions::default()
    }
}

fn start_server(
    config: ServeConfig,
) -> (SocketAddr, pc_serve::ServerHandle, thread::JoinHandle<()>) {
    let table = fixture_table();
    let base = base_set(&table);
    let server = Server::bind("127.0.0.1:0", table, base, config).unwrap();
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = thread::spawn(move || server.run().unwrap());
    (addr, handle, join)
}

/// The mutation stream the snapshot test plays against the `default`
/// tenant, in wire notation. All predicates are `TRUE`, so the exact
/// COUNT range is `[max kl, min ku]` over the live constraints — every
/// step moves at least one side of the interval (a retire may fall back
/// to an earlier interval; the oracle is keyed by epoch, not by value).
const MUTATIONS: &[&str] = &[
    "+ TRUE => price BETWEEN 0 AND 149.99, (10, 90)",
    "+ TRUE => price BETWEEN 0 AND 149.99, (20, 80)",
    "- c1",
    "replace c2 TRUE => price BETWEEN 0 AND 149.99, (30, 70)",
    "+ TRUE => price BETWEEN 0 AND 149.99, (40, 60)",
    "- c0",
];

/// Replay [`MUTATIONS`] against a local shadow session and record the
/// exact COUNT range at every epoch. The server's `default` tenant sees
/// the same ops in the same order, so epoch `e` there has the same
/// catalog — and the engine is deterministic, so the same range.
fn oracle_by_epoch() -> HashMap<u64, (f64, f64)> {
    let table = fixture_table();
    let session = Session::with_options(base_set(&table), exact_options());
    let query = parse_query(&table, "SELECT COUNT(*)").unwrap();
    let budget = QueryBudget::unlimited();
    let mut oracle = HashMap::new();
    oracle.insert(session.epoch(), range_of(&session, &query));
    for line in MUTATIONS {
        if let Some(rest) = line.strip_prefix("+ ") {
            let pc = dsl::parse_constraint(&table, rest).unwrap();
            session.add_constraint_stamped(pc, &budget);
        } else if let Some(rest) = line.strip_prefix("- ") {
            session
                .retire_constraint_stamped(rest.parse().unwrap())
                .unwrap();
        } else if let Some(rest) = line.strip_prefix("replace ") {
            let (id, text) = rest.split_once(' ').unwrap();
            let pc = dsl::parse_constraint(&table, text).unwrap();
            session
                .replace_constraint_stamped(id.parse().unwrap(), pc, &budget)
                .unwrap();
        } else {
            panic!("unhandled mutation line {line}");
        }
        oracle.insert(session.epoch(), range_of(&session, &query));
    }
    oracle
}

fn range_of(session: &Session, query: &pc_storage::AggQuery) -> (f64, f64) {
    let report = session.bound(query).unwrap();
    (report.range.lo, report.range.hi)
}

fn close_to(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-6 * b.abs().max(1.0)
}

/// Satellite 1 — snapshot isolation over the socket: reader threads
/// stream `bound` queries while one connection mutates the catalog;
/// every response's range must match the oracle *for its stamped epoch*,
/// proving a racing query answers from exactly one consistent catalog.
#[test]
fn snapshot_isolation_under_concurrent_mutation() {
    let config = ServeConfig {
        options: exact_options(),
        ..ServeConfig::default()
    };
    let (addr, handle, join) = start_server(config);
    let oracle = oracle_by_epoch();

    let stop = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut conn = Connection::connect(addr).unwrap();
                let mut seen: Vec<(u64, f64, f64)> = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    let resp = conn.send("bound SELECT COUNT(*)").unwrap();
                    assert!(resp.is_ok(), "reader got {}", resp.header);
                    let (lo, hi) = resp.range().unwrap();
                    seen.push((resp.epoch().unwrap(), lo, hi));
                }
                seen
            })
        })
        .collect();

    let mut mutator = Connection::connect(addr).unwrap();
    for (i, line) in MUTATIONS.iter().enumerate() {
        thread::sleep(Duration::from_millis(40));
        let resp = mutator.send(line).unwrap();
        assert!(resp.is_ok(), "`{line}` got {}", resp.header);
        // One mutator, no other writers: epochs advance densely.
        assert_eq!(resp.epoch(), Some(i as u64 + 1), "`{line}`");
    }
    thread::sleep(Duration::from_millis(40));
    stop.store(true, Ordering::SeqCst);

    let mut distinct = std::collections::HashSet::new();
    for reader in readers {
        for (epoch, lo, hi) in reader.join().unwrap() {
            let (want_lo, want_hi) = *oracle
                .get(&epoch)
                .unwrap_or_else(|| panic!("response stamped unknown epoch {epoch}"));
            assert!(
                close_to(lo, want_lo) && close_to(hi, want_hi),
                "epoch {epoch}: got [{lo},{hi}], oracle says [{want_lo},{want_hi}]"
            );
            distinct.insert(epoch);
        }
    }
    // The race was real: the readers observed the catalog both before
    // and after mutations landed, not one quiescent snapshot.
    assert!(
        distinct.len() >= 2,
        "readers only ever saw epochs {distinct:?}; the interleaving test was vacuous"
    );

    // A multi-row response carries one stamp for all its rows: both
    // batch answers come from the same pinned epoch.
    let resp = mutator
        .send("batch SELECT COUNT(*) ;; SELECT COUNT(*)")
        .unwrap();
    assert!(resp.is_ok());
    assert_eq!(resp.epoch(), Some(MUTATIONS.len() as u64));
    assert_eq!(resp.rows.len(), 2);
    let (want_lo, want_hi) = oracle[&(MUTATIONS.len() as u64)];
    for row in &resp.rows {
        let (lo, hi) = pc_serve::proto::parse_range(row).unwrap();
        assert!(close_to(lo, want_lo) && close_to(hi, want_hi), "{row}");
    }

    handle.shutdown();
    join.join().unwrap();
}

/// Satellite 2 — the slow-loris bound: a connection that goes silent
/// mid-line neither blocks other tenants' queries nor holds shutdown
/// past the drain deadline.
#[test]
fn stalled_connection_cannot_stall_other_tenants_or_shutdown() {
    let config = ServeConfig {
        options: exact_options(),
        read_timeout: Duration::from_millis(400),
        poll_interval: Duration::from_millis(5),
        drain: Duration::from_millis(500),
        ..ServeConfig::default()
    };
    let (addr, _handle, join) = start_server(config);

    // The slow loris: half a request, then silence with the socket open.
    let mut loris = TcpStream::connect(addr).unwrap();
    loris.write_all(b"bound SELECT CO").unwrap();
    loris.flush().unwrap();

    // Another tenant's traffic proceeds while the loris holds its line.
    let mut conn = Connection::connect(addr).unwrap();
    conn.set_response_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let resp = conn.send("tenant create other").unwrap();
    assert!(resp.is_ok(), "{}", resp.header);
    assert!(conn.send("use other").unwrap().is_ok());
    let started = Instant::now();
    let resp = conn.send("bound SELECT COUNT(*)").unwrap();
    assert!(resp.is_ok(), "{}", resp.header);
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "a stalled peer delayed an unrelated query by {:?}",
        started.elapsed()
    );

    // Graceful shutdown completes within the drain deadline (plus server
    // poll slack) even with the stalled connection still open.
    let started = Instant::now();
    assert!(conn.send("shutdown").unwrap().is_ok());
    join.join().unwrap();
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "shutdown took {:?} despite a 500ms drain deadline",
        started.elapsed()
    );

    // The loris's connection thread notices the drain and closes its end.
    loris
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut sink = [0u8; 64];
    loop {
        match loris.read(&mut sink) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(e) => panic!("expected server-side close, got {e}"),
        }
    }
}

/// Per-connection damage bounds: empty lines, malformed lines, bad
/// budget directives, and over-long lines each answer one `ERR line N:`
/// and the connection keeps serving. Response pairing never slips.
#[test]
fn malformed_lines_answer_err_without_killing_the_connection() {
    let config = ServeConfig {
        options: exact_options(),
        max_line_bytes: 64,
        ..ServeConfig::default()
    };
    let (addr, handle, join) = start_server(config);
    let mut conn = Connection::connect(addr).unwrap();

    let resp = conn.send("").unwrap();
    assert_eq!(resp.header, "ERR line 1: empty request");
    let resp = conn.send("frobnicate the catalog").unwrap();
    assert!(
        resp.header.starts_with("ERR line 2: unknown verb"),
        "{}",
        resp.header
    );
    let resp = conn.send("bound @timeout-ms=0 SELECT COUNT(*)").unwrap();
    assert!(
        resp.header.contains("the minimum cap is 1"),
        "{}",
        resp.header
    );
    let resp = conn.send("bound SELECT FROB(*)").unwrap();
    assert!(resp.header.starts_with("ERR line 4:"), "{}", resp.header);
    let resp = conn.send("- c99").unwrap();
    assert!(resp.header.starts_with("ERR line 5:"), "{}", resp.header);

    // Over-long line, streamed without its newline so the buffer bound
    // (not the line splitter) has to catch it: one ERR, rest discarded.
    let resp = conn.send("use nosuchtenant").unwrap();
    assert!(resp.header.starts_with("ERR line 6:"), "{}", resp.header);
    {
        // Reach under the helper: write 100 bytes, stall, then the rest.
        let raw = conn.raw_stream();
        raw.write_all(&[b'x'; 100]).unwrap();
        raw.flush().unwrap();
        thread::sleep(Duration::from_millis(100));
        raw.write_all(b"tail\n").unwrap();
        raw.flush().unwrap();
    }
    let resp = conn.read_response().unwrap();
    assert_eq!(resp.header, "ERR line 7: request exceeds 64 bytes");

    // The connection still works after every one of those.
    let resp = conn.send("ping").unwrap();
    assert_eq!(resp.header, "OK pong");
    let resp = conn.send("bound SELECT COUNT(*)").unwrap();
    assert!(resp.is_ok(), "{}", resp.header);
    assert_eq!(resp.epoch(), Some(0));

    assert!(conn.send("quit").unwrap().is_ok());
    handle.shutdown();
    join.join().unwrap();
}

/// Draining servers refuse new queries with an `ERR`, not a hang or a
/// dropped connection.
#[test]
fn draining_server_rejects_new_queries() {
    let config = ServeConfig {
        options: exact_options(),
        drain: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let (addr, _handle, join) = start_server(config);
    let mut conn = Connection::connect(addr).unwrap();
    let mut other = Connection::connect(addr).unwrap();
    assert!(conn.send("shutdown").unwrap().is_ok());
    join.join().unwrap();
    // `other` connected before the drain; its pending request either
    // answers "draining" or the socket closes — both are bounded-damage.
    other
        .set_response_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match other.send("bound SELECT COUNT(*)") {
        Ok(resp) => assert!(
            resp.header.contains("draining"),
            "expected a draining rejection, got {}",
            resp.header
        ),
        Err(e) => assert!(
            matches!(
                e.kind(),
                std::io::ErrorKind::UnexpectedEof
                    | std::io::ErrorKind::BrokenPipe
                    | std::io::ErrorKind::ConnectionReset
            ),
            "unexpected error {e}"
        ),
    }
}
