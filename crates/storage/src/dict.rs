use std::collections::HashMap;

/// A string dictionary assigning dense `u32` codes in first-seen order.
///
/// Categorical columns store codes; the dictionary recovers the label for
/// display and lets predicates be written against strings.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dictionary {
    labels: Vec<String>,
    codes: HashMap<String, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Intern a label, returning its (possibly new) code.
    pub fn intern(&mut self, label: &str) -> u32 {
        if let Some(&code) = self.codes.get(label) {
            return code;
        }
        let code = u32::try_from(self.labels.len()).expect("dictionary overflow");
        self.labels.push(label.to_string());
        self.codes.insert(label.to_string(), code);
        code
    }

    /// Look up an existing label's code without interning.
    pub fn code(&self, label: &str) -> Option<u32> {
        self.codes.get(label).copied()
    }

    /// The label for a code.
    pub fn label(&self, code: u32) -> Option<&str> {
        self.labels.get(code as usize).map(String::as_str)
    }

    /// Number of distinct labels.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if no labels have been interned.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("Chicago");
        let b = d.intern("New York");
        let a2 = d.intern("Chicago");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(d.len(), 2);
    }

    #[test]
    fn lookup_both_ways() {
        let mut d = Dictionary::new();
        let c = d.intern("Trenton");
        assert_eq!(d.code("Trenton"), Some(c));
        assert_eq!(d.label(c), Some("Trenton"));
        assert_eq!(d.code("nowhere"), None);
        assert_eq!(d.label(99), None);
    }

    #[test]
    fn codes_are_dense_first_seen() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("c"), 2);
    }
}
