//! A SQL-ish surface for aggregate queries — the paper's user interface
//! (§2) is exactly this query family:
//!
//! ```sql
//! SELECT SUM(price) FROM sales
//! WHERE utc >= 11 AND utc < 13 AND branch = 'Chicago'
//! ```
//!
//! Supported grammar:
//!
//! ```text
//! query  := SELECT agg [FROM ident] [WHERE cond (AND cond)*]
//! agg    := COUNT(*) | (SUM|AVG|MIN|MAX) ( ident )
//! cond   := ident cmp literal
//!         | literal cmp ident
//!         | ident BETWEEN literal AND literal
//! cmp    := = | < | <= | > | >=
//! ```
//!
//! String literals resolve against the categorical attribute's dictionary;
//! an unknown label is an error (it cannot match anything, which is almost
//! certainly a typo the user wants to hear about).

use crate::{AggKind, AggQuery, Table};
use pc_predicate::text::{tokenize, Cursor, ParseError, Sym, Token};
use pc_predicate::{Atom, AttrType, Interval, Predicate, Schema};

/// Parse `SELECT agg(attr) [FROM t] [WHERE …]` against a table (needed to
/// resolve attribute names and dictionary labels).
pub fn parse_query(table: &Table, src: &str) -> Result<AggQuery, ParseError> {
    let tokens = tokenize(src)?;
    let mut c = Cursor::new(&tokens, src.len());
    c.expect_keyword("SELECT")?;

    let at = c.at();
    let agg_name = c.expect_ident()?;
    let agg = match agg_name.to_ascii_uppercase().as_str() {
        "COUNT" => AggKind::Count,
        "SUM" => AggKind::Sum,
        "AVG" => AggKind::Avg,
        "MIN" => AggKind::Min,
        "MAX" => AggKind::Max,
        other => {
            return Err(ParseError::new(
                at,
                format!("unknown aggregate `{other}` (expected COUNT/SUM/AVG/MIN/MAX)"),
            ))
        }
    };
    c.expect_symbol(Sym::LParen)?;
    let attr = if agg == AggKind::Count {
        c.expect_symbol(Sym::Star)?;
        0
    } else {
        let at = c.at();
        let name = c.expect_ident()?;
        resolve_attr(table.schema(), &name, at)?
    };
    c.expect_symbol(Sym::RParen)?;

    if c.eat_keyword("FROM") {
        let _table_name = c.expect_ident()?; // single-table queries: name is decorative
    }

    let mut predicate = Predicate::always();
    if c.eat_keyword("WHERE") {
        loop {
            let atom = parse_condition(table, &mut c)?;
            predicate = predicate.and(atom);
            if !c.eat_keyword("AND") {
                break;
            }
        }
    }
    if !c.done() {
        return Err(ParseError::new(c.at(), "unexpected trailing input"));
    }
    Ok(AggQuery::new(agg, attr, predicate))
}

/// Render a query back to SQL — the inverse of [`parse_query`]
/// (categorical point conditions recover their dictionary labels). Useful
/// for logging the workloads experiments generate and for persisting
/// queries next to constraint documents.
pub fn render_query(table: &Table, query: &AggQuery) -> String {
    let schema = table.schema();
    let mut out = String::from("SELECT ");
    if query.agg == AggKind::Count {
        out.push_str("COUNT(*)");
    } else {
        out.push_str(&format!(
            "{}({})",
            query.agg.name(),
            schema.attr_name(query.attr)
        ));
    }
    let mut first = true;
    for atom in query.predicate.atoms() {
        out.push_str(if first { " WHERE " } else { " AND " });
        first = false;
        let name = schema.attr_name(atom.attr);
        let iv = atom.interval;
        let lit = |v: f64| -> String {
            match table.dictionary(atom.attr).and_then(|d| d.label(v as u32)) {
                Some(label) if v >= 0.0 && v.fract() == 0.0 => {
                    format!("'{}'", label.replace('\'', "''"))
                }
                _ => format!("{v}"),
            }
        };
        if iv.lo == iv.hi && !iv.lo_open && !iv.hi_open {
            out.push_str(&format!("{name} = {}", lit(iv.lo)));
        } else if iv.lo == f64::NEG_INFINITY {
            let op = if iv.hi_open { "<" } else { "<=" };
            out.push_str(&format!("{name} {op} {}", lit(iv.hi)));
        } else if iv.hi == f64::INFINITY {
            let op = if iv.lo_open { ">" } else { ">=" };
            out.push_str(&format!("{name} {op} {}", lit(iv.lo)));
        } else {
            // two-sided: render as a pair of comparisons to preserve
            // endpoint openness exactly (BETWEEN is always closed)
            let lo_op = if iv.lo_open { ">" } else { ">=" };
            let hi_op = if iv.hi_open { "<" } else { "<=" };
            out.push_str(&format!(
                "{name} {lo_op} {} AND {name} {hi_op} {}",
                lit(iv.lo),
                lit(iv.hi)
            ));
        }
    }
    out
}

fn resolve_attr(schema: &Schema, name: &str, at: usize) -> Result<usize, ParseError> {
    schema
        .index_of(name)
        .ok_or_else(|| ParseError::new(at, format!("no attribute named `{name}` in {schema}")))
}

/// A literal is a number or a dictionary label.
fn parse_literal(table: &Table, attr: usize, c: &mut Cursor<'_>) -> Result<f64, ParseError> {
    let at = c.at();
    match c.advance() {
        Some(Token::Number(n)) => Ok(*n),
        Some(Token::Str(s)) => {
            let dict = table.dictionary(attr).ok_or_else(|| {
                ParseError::new(
                    at,
                    format!(
                        "attribute `{}` is not categorical; string literal makes no sense",
                        table.schema().attr_name(attr)
                    ),
                )
            })?;
            let code = dict
                .code(s)
                .ok_or_else(|| ParseError::new(at, format!("unknown label '{s}'")))?;
            Ok(f64::from(code))
        }
        other => Err(ParseError::new(
            at,
            format!("expected literal, found {other:?}"),
        )),
    }
}

fn parse_condition(table: &Table, c: &mut Cursor<'_>) -> Result<Atom, ParseError> {
    let at = c.at();
    // two forms: `attr op lit` / `attr BETWEEN a AND b`, or `lit op attr`
    match c.peek() {
        Some(Token::Ident(_)) => {
            let name = c.expect_ident()?;
            let attr = resolve_attr(table.schema(), &name, at)?;
            if c.eat_keyword("BETWEEN") {
                let lo = parse_literal(table, attr, c)?;
                c.expect_keyword("AND")?;
                let hi = parse_literal(table, attr, c)?;
                return Ok(Atom::between(attr, lo, hi));
            }
            let op_at = c.at();
            let op = expect_cmp(c)?;
            let lit = parse_literal(table, attr, c)?;
            atom_for(attr, op, lit, table.schema().attr_type(attr), op_at)
        }
        _ => {
            // literal op attr — flip the comparison
            let lit_at = c.at();
            let lit_tok = c.advance().cloned();
            let op = expect_cmp(c)?;
            let name_at = c.at();
            let name = c.expect_ident()?;
            let attr = resolve_attr(table.schema(), &name, name_at)?;
            let lit =
                match lit_tok {
                    Some(Token::Number(n)) => n,
                    Some(Token::Str(s)) => {
                        let dict = table.dictionary(attr).ok_or_else(|| {
                            ParseError::new(lit_at, "string literal on non-categorical attribute")
                        })?;
                        f64::from(dict.code(&s).ok_or_else(|| {
                            ParseError::new(lit_at, format!("unknown label '{s}'"))
                        })?)
                    }
                    other => {
                        return Err(ParseError::new(
                            lit_at,
                            format!("expected literal, found {other:?}"),
                        ))
                    }
                };
            let flipped = match op {
                Sym::Lt => Sym::Gt,
                Sym::Le => Sym::Ge,
                Sym::Gt => Sym::Lt,
                Sym::Ge => Sym::Le,
                other => other,
            };
            atom_for(attr, flipped, lit, table.schema().attr_type(attr), lit_at)
        }
    }
}

fn expect_cmp(c: &mut Cursor<'_>) -> Result<Sym, ParseError> {
    let at = c.at();
    match c.advance() {
        Some(Token::Symbol(s @ (Sym::Eq | Sym::Lt | Sym::Le | Sym::Gt | Sym::Ge))) => Ok(*s),
        other => Err(ParseError::new(
            at,
            format!("expected comparison operator, found {other:?}"),
        )),
    }
}

fn atom_for(attr: usize, op: Sym, lit: f64, _ty: AttrType, at: usize) -> Result<Atom, ParseError> {
    let interval = match op {
        Sym::Eq => Interval::point(lit),
        Sym::Lt => Interval::at_most(lit, true),
        Sym::Le => Interval::at_most(lit, false),
        Sym::Gt => Interval::at_least(lit, true),
        Sym::Ge => Interval::at_least(lit, false),
        other => {
            return Err(ParseError::new(
                at,
                format!("`{other}` is not a comparison"),
            ))
        }
    };
    Ok(Atom::new(attr, interval))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use pc_predicate::Value;

    fn sales() -> Table {
        let schema = Schema::new(vec![
            ("utc", AttrType::Int),
            ("branch", AttrType::Cat),
            ("price", AttrType::Float),
        ]);
        let mut t = Table::new(schema);
        let chi = t.intern(1, "Chicago");
        let ny = t.intern(1, "New York");
        for (d, b, p) in [(1, chi, 3.0), (2, ny, 6.5), (3, chi, 19.0), (4, chi, 150.0)] {
            t.push_row(vec![Value::Int(d), Value::Cat(b), Value::Float(p)]);
        }
        t
    }

    #[test]
    fn count_star() {
        let t = sales();
        let q = parse_query(&t, "SELECT COUNT(*) FROM sales").unwrap();
        assert_eq!(evaluate(&t, &q).value(), 4.0);
    }

    #[test]
    fn sum_with_conditions() {
        let t = sales();
        let q = parse_query(
            &t,
            "SELECT SUM(price) WHERE utc >= 2 AND utc <= 3 AND branch = 'Chicago'",
        )
        .unwrap();
        assert_eq!(evaluate(&t, &q).value(), 19.0);
    }

    #[test]
    fn between_and_flipped_literal() {
        let t = sales();
        let q = parse_query(&t, "SELECT AVG(price) WHERE utc BETWEEN 1 AND 2").unwrap();
        assert_eq!(evaluate(&t, &q).value(), 4.75);
        let q = parse_query(&t, "SELECT COUNT(*) WHERE 3 <= utc").unwrap();
        assert_eq!(evaluate(&t, &q).value(), 2.0);
    }

    #[test]
    fn strict_inequalities() {
        let t = sales();
        let q = parse_query(&t, "SELECT COUNT(*) WHERE price > 6.5").unwrap();
        assert_eq!(evaluate(&t, &q).value(), 2.0);
        let q = parse_query(&t, "SELECT COUNT(*) WHERE price >= 6.5").unwrap();
        assert_eq!(evaluate(&t, &q).value(), 3.0);
    }

    #[test]
    fn case_insensitive_keywords() {
        let t = sales();
        let q = parse_query(&t, "select min(price) from sales where branch = 'New York'").unwrap();
        assert_eq!(evaluate(&t, &q).value(), 6.5);
    }

    #[test]
    fn helpful_errors() {
        let t = sales();
        let e = parse_query(&t, "SELECT MEDIAN(price)").unwrap_err();
        assert!(e.message.contains("MEDIAN"), "{e}");
        let e = parse_query(&t, "SELECT SUM(cost)").unwrap_err();
        assert!(e.message.contains("cost"), "{e}");
        let e = parse_query(&t, "SELECT COUNT(*) WHERE branch = 'Boston'").unwrap_err();
        assert!(e.message.contains("Boston"), "{e}");
        let e = parse_query(&t, "SELECT COUNT(*) WHERE price = 'Chicago'").unwrap_err();
        assert!(e.message.contains("not categorical"), "{e}");
        let e = parse_query(&t, "SELECT COUNT(*) extra").unwrap_err();
        assert!(e.message.contains("trailing"), "{e}");
    }

    #[test]
    fn render_roundtrips() {
        let t = sales();
        for src in [
            "SELECT COUNT(*)",
            "SELECT SUM(price) WHERE branch = 'Chicago'",
            "SELECT AVG(price) WHERE utc >= 2 AND utc < 4",
            "SELECT MAX(price) WHERE price > 5 AND price <= 150",
            "SELECT MIN(price) WHERE utc BETWEEN 1 AND 3",
        ] {
            let q1 = parse_query(&t, src).unwrap();
            let rendered = render_query(&t, &q1);
            let q2 = parse_query(&t, &rendered).unwrap();
            // semantic equivalence: same rows selected, same aggregate
            assert_eq!(q1.agg, q2.agg, "{src} → {rendered}");
            assert_eq!(q1.attr, q2.attr);
            for r in 0..t.len() {
                let row = t.encoded_row(r);
                assert_eq!(
                    q1.predicate.eval(&row),
                    q2.predicate.eval(&row),
                    "{src} → {rendered} disagree on row {r}"
                );
            }
        }
    }

    #[test]
    fn render_escapes_labels() {
        let schema = Schema::new(vec![("b", AttrType::Cat)]);
        let mut t = Table::new(schema);
        let code = t.intern(0, "O'Hare");
        t.push_row(vec![Value::Cat(code)]);
        let q = parse_query(&t, "SELECT COUNT(*) WHERE b = 'O''Hare'").unwrap();
        let rendered = render_query(&t, &q);
        assert!(rendered.contains("'O''Hare'"), "{rendered}");
        assert!(parse_query(&t, &rendered).is_ok());
    }

    #[test]
    fn paper_query_form() {
        // the §4.4 query shape parses and evaluates
        let t = sales();
        let q = parse_query(
            &t,
            "SELECT SUM(price) FROM sales WHERE utc >= 2 AND utc <= 4",
        )
        .unwrap();
        assert_eq!(evaluate(&t, &q).value(), 6.5 + 19.0 + 150.0);
    }
}
