//! In-memory columnar storage for the Predicate-Constraint framework.
//!
//! The paper evaluates PCs against ground truth computed on real tables;
//! this crate is the substrate that plays the role of the authors'
//! evaluation database: typed columnar tables with dictionary-encoded
//! categoricals, predicate filters, the five supported aggregates
//! (`COUNT/SUM/AVG/MIN/MAX`), natural hash joins for the §6.6.3 join
//! experiments, and quantile partitioning used by PC generators and
//! stratified sampling.

#![warn(missing_docs)]

mod aggregate;
mod column;
pub mod csv;
mod dict;
mod filter;
mod join;
mod partition;
pub mod sql;
mod table;

pub use aggregate::{evaluate, evaluate_on_rows, AggKind, AggQuery, AggResult};
pub use column::Column;
pub use csv::{table_from_csv, table_to_csv};
pub use dict::Dictionary;
pub use filter::filter_indices;
pub use join::natural_join;
pub use partition::{quantile_boundaries, GridPartitioner};
pub use sql::{parse_query, render_query};
pub use table::Table;
