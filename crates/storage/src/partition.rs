use crate::Table;
use pc_predicate::{Atom, Interval, Predicate};

/// Quantile boundaries splitting `values` into `buckets` roughly
/// equi-cardinality pieces. Returns `buckets − 1` interior cut points.
///
/// Duplicated cut points (heavy ties) are deduplicated, so the effective
/// number of buckets can be smaller on skewed data — matching how the
/// paper's Corr-PC "divides the combined space into equi-cardinality
/// buckets" (§6.1.4).
pub fn quantile_boundaries(values: &[f64], buckets: usize) -> Vec<f64> {
    assert!(buckets >= 1, "need at least one bucket");
    if values.is_empty() || buckets == 1 {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("stored values are never NaN"));
    let mut cuts = Vec::with_capacity(buckets - 1);
    for k in 1..buckets {
        let idx = (k * sorted.len()) / buckets;
        let cut = sorted[idx.min(sorted.len() - 1)];
        if cuts.last() != Some(&cut) {
            cuts.push(cut);
        }
    }
    cuts
}

/// An equi-cardinality grid over one or two attributes of a table, used by
/// the Corr-PC generator and the stratified sampling baseline.
#[derive(Debug, Clone)]
pub struct GridPartitioner {
    /// `(attr, bucket edges)` per dimension; edges have length
    /// `buckets + 1` with ±∞ sentinels at the ends.
    dims: Vec<(usize, Vec<f64>)>,
}

impl GridPartitioner {
    /// Build a grid from the table's value distribution: `buckets_per_dim`
    /// quantile buckets on each listed attribute.
    pub fn from_table(table: &Table, attrs: &[usize], buckets_per_dim: &[usize]) -> Self {
        assert_eq!(attrs.len(), buckets_per_dim.len());
        let mut dims = Vec::with_capacity(attrs.len());
        for (&attr, &buckets) in attrs.iter().zip(buckets_per_dim) {
            let values: Vec<f64> = (0..table.len()).map(|r| table.encoded(r, attr)).collect();
            let mut edges = vec![f64::NEG_INFINITY];
            edges.extend(quantile_boundaries(&values, buckets));
            edges.push(f64::INFINITY);
            dims.push((attr, edges));
        }
        GridPartitioner { dims }
    }

    /// Number of grid cells.
    pub fn num_cells(&self) -> usize {
        self.dims.iter().map(|(_, e)| e.len() - 1).product()
    }

    /// The flat cell index a row falls into.
    pub fn cell_of(&self, table: &Table, row: usize) -> usize {
        let mut idx = 0;
        for (attr, edges) in &self.dims {
            let v = table.encoded(row, *attr);
            let b = bucket_of(edges, v);
            idx = idx * (edges.len() - 1) + b;
        }
        idx
    }

    /// The predicate describing a flat cell index: half-open buckets
    /// `[lo, hi)` except the last bucket of each dimension, which is
    /// unbounded above so the grid covers (is *closed* over) the whole
    /// domain.
    pub fn cell_predicate(&self, mut cell: usize) -> Predicate {
        let mut atoms = Vec::with_capacity(self.dims.len());
        for (attr, edges) in self.dims.iter().rev() {
            let nb = edges.len() - 1;
            let b = cell % nb;
            cell /= nb;
            let lo = edges[b];
            let hi = edges[b + 1];
            let iv = Interval::new(lo, lo == f64::NEG_INFINITY, hi, true);
            atoms.push(Atom::new(*attr, iv));
        }
        atoms.reverse();
        Predicate::new(atoms)
    }

    /// Group every row of a table into its cell: returns `num_cells` row
    /// index lists.
    pub fn assign(&self, table: &Table) -> Vec<Vec<usize>> {
        let mut cells = vec![Vec::new(); self.num_cells()];
        for r in 0..table.len() {
            cells[self.cell_of(table, r)].push(r);
        }
        cells
    }
}

fn bucket_of(edges: &[f64], v: f64) -> usize {
    // edges = [-inf, c1, ..., ck, +inf]; bucket b covers [edges[b],
    // edges[b+1]). Linear scan: grids are small (tens of edges).
    for b in 0..edges.len() - 2 {
        if v < edges[b + 1] {
            return b;
        }
    }
    edges.len() - 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{AttrType, Schema, Value};

    fn table_1d(values: &[f64]) -> Table {
        let schema = Schema::new(vec![("v", AttrType::Float)]);
        let mut t = Table::new(schema);
        for &v in values {
            t.push_row(vec![Value::Float(v)]);
        }
        t
    }

    #[test]
    fn quantiles_split_evenly() {
        let values: Vec<f64> = (0..100).map(f64::from).collect();
        let cuts = quantile_boundaries(&values, 4);
        assert_eq!(cuts, vec![25.0, 50.0, 75.0]);
    }

    #[test]
    fn quantiles_dedupe_ties() {
        let values = vec![5.0; 50];
        let cuts = quantile_boundaries(&values, 4);
        assert!(cuts.len() <= 1);
    }

    #[test]
    fn grid_covers_all_rows() {
        let t = table_1d(&(0..97).map(f64::from).collect::<Vec<_>>());
        let g = GridPartitioner::from_table(&t, &[0], &[4]);
        let cells = g.assign(&t);
        assert_eq!(cells.iter().map(Vec::len).sum::<usize>(), 97);
        // roughly equi-cardinality
        for c in &cells {
            assert!(c.len() >= 20 && c.len() <= 30, "cell size {}", c.len());
        }
    }

    #[test]
    fn cell_predicate_matches_assignment() {
        let t = table_1d(&[1.0, 2.0, 3.0, 10.0, 20.0, 30.0, 40.0, 55.0]);
        let g = GridPartitioner::from_table(&t, &[0], &[3]);
        let cells = g.assign(&t);
        for (ci, rows) in cells.iter().enumerate() {
            let pred = g.cell_predicate(ci);
            for &r in rows {
                assert!(
                    pred.eval(&t.encoded_row(r)),
                    "row {r} must satisfy its cell's predicate"
                );
            }
        }
    }

    #[test]
    fn two_dimensional_grid() {
        let schema = Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..64 {
            t.push_row(vec![
                Value::Float(f64::from(i % 8)),
                Value::Float(f64::from(i / 8)),
            ]);
        }
        let g = GridPartitioner::from_table(&t, &[0, 1], &[2, 2]);
        assert_eq!(g.num_cells(), 4);
        let cells = g.assign(&t);
        for c in &cells {
            assert_eq!(c.len(), 16);
        }
        // grid closure: an out-of-distribution row still lands in a cell
        let pred_union_hits = (0..g.num_cells())
            .filter(|&ci| g.cell_predicate(ci).eval(&[1e9, -1e9]))
            .count();
        assert_eq!(pred_union_hits, 1);
    }
}
