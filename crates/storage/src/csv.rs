//! Minimal CSV import/export so real datasets can be loaded without
//! adding a parsing dependency. Covers the shape the experiments'
//! datasets use: a header row, numeric columns, and quoted or bare
//! categorical labels. Not a general RFC-4180 implementation — embedded
//! newlines inside quoted fields are unsupported (and rejected loudly).

use crate::Table;
use pc_predicate::{AttrType, Schema, Value};
use std::fmt::Write as _;

/// Errors from CSV ingestion.
#[derive(Debug, Clone, PartialEq)]
pub struct CsvError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CSV error on line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

fn split_line(line: &str, lineno: usize) -> Result<Vec<String>, CsvError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(CsvError {
            line: lineno,
            message: "unterminated quoted field".into(),
        });
    }
    fields.push(cur);
    Ok(fields)
}

/// Parse CSV text into a [`Table`] with the given schema. The header row
/// must name exactly the schema's attributes (in order); categorical
/// fields are interned on the fly.
pub fn table_from_csv(schema: Schema, src: &str) -> Result<Table, CsvError> {
    let mut lines = src.lines().enumerate();
    let (_, header) = lines.next().ok_or(CsvError {
        line: 1,
        message: "empty input".into(),
    })?;
    let names = split_line(header, 1)?;
    if names.len() != schema.width() {
        return Err(CsvError {
            line: 1,
            message: format!(
                "header has {} columns, schema {} needs {}",
                names.len(),
                schema,
                schema.width()
            ),
        });
    }
    for (i, name) in names.iter().enumerate() {
        if name.trim() != schema.attr_name(i) {
            return Err(CsvError {
                line: 1,
                message: format!(
                    "header column {} is `{}`, schema expects `{}`",
                    i,
                    name.trim(),
                    schema.attr_name(i)
                ),
            });
        }
    }

    let mut table = Table::new(schema.clone());
    for (idx, line) in lines {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_line(line, lineno)?;
        if fields.len() != schema.width() {
            return Err(CsvError {
                line: lineno,
                message: format!("expected {} fields, found {}", schema.width(), fields.len()),
            });
        }
        let mut row = Vec::with_capacity(schema.width());
        for (attr, field) in fields.iter().enumerate() {
            let field = field.trim();
            let value = match schema.attr_type(attr) {
                AttrType::Int => Value::Int(field.parse::<i64>().map_err(|_| CsvError {
                    line: lineno,
                    message: format!(
                        "`{field}` is not an integer for attribute `{}`",
                        schema.attr_name(attr)
                    ),
                })?),
                AttrType::Float => {
                    let v: f64 = field.parse().map_err(|_| CsvError {
                        line: lineno,
                        message: format!(
                            "`{field}` is not a number for attribute `{}`",
                            schema.attr_name(attr)
                        ),
                    })?;
                    if v.is_nan() {
                        return Err(CsvError {
                            line: lineno,
                            message: "NaN values cannot be stored".into(),
                        });
                    }
                    Value::Float(v)
                }
                AttrType::Cat => Value::Cat(table.intern(attr, field)),
            };
            row.push(value);
        }
        table.push_row(row);
    }
    Ok(table)
}

/// Render a table as CSV (header + one line per row, labels quoted when
/// they contain commas or quotes).
pub fn table_to_csv(table: &Table) -> String {
    let schema = table.schema();
    let mut out = String::new();
    for i in 0..schema.width() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(schema.attr_name(i));
    }
    out.push('\n');
    for r in 0..table.len() {
        for (a, value) in table.row(r).into_iter().enumerate() {
            if a > 0 {
                out.push(',');
            }
            match value {
                Value::Int(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::Float(v) => {
                    let _ = write!(out, "{v}");
                }
                Value::Cat(code) => {
                    let label = table
                        .dictionary(a)
                        .and_then(|d| d.label(code))
                        .unwrap_or("?");
                    if label.contains(',') || label.contains('"') {
                        let _ = write!(out, "\"{}\"", label.replace('"', "\"\""));
                    } else {
                        out.push_str(label);
                    }
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("utc", AttrType::Int),
            ("branch", AttrType::Cat),
            ("price", AttrType::Float),
        ])
    }

    #[test]
    fn roundtrip() {
        let src = "utc,branch,price\n1,Chicago,3.02\n2,New York,6.71\n3,Chicago,18.99\n";
        let t = table_from_csv(schema(), src).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.encoded(1, 1), 1.0); // New York's code
        assert_eq!(t.encoded(2, 2), 18.99);
        let back = table_to_csv(&t);
        let t2 = table_from_csv(schema(), &back).unwrap();
        assert_eq!(t2.len(), 3);
        assert_eq!(t2.encoded_row(1), t.encoded_row(1));
    }

    #[test]
    fn quoted_labels() {
        let src = "utc,branch,price\n1,\"Hanover, NH\",2.0\n2,\"The \"\"Loop\"\"\",3.0\n";
        let t = table_from_csv(schema(), src).unwrap();
        assert_eq!(t.dictionary(1).unwrap().label(0), Some("Hanover, NH"));
        assert_eq!(t.dictionary(1).unwrap().label(1), Some("The \"Loop\""));
        // roundtrip keeps the quoting
        let back = table_to_csv(&t);
        let t2 = table_from_csv(schema(), &back).unwrap();
        assert_eq!(t2.dictionary(1).unwrap().label(0), Some("Hanover, NH"));
    }

    #[test]
    fn header_mismatch_rejected() {
        let e = table_from_csv(schema(), "utc,store,price\n").unwrap_err();
        assert!(e.message.contains("store"), "{e}");
        assert_eq!(e.line, 1);
    }

    #[test]
    fn bad_values_located() {
        let e = table_from_csv(schema(), "utc,branch,price\n1,Chi,ok\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("ok"));
        let e = table_from_csv(schema(), "utc,branch,price\nx,Chi,1.0\n").unwrap_err();
        assert!(e.message.contains("not an integer"));
        let e = table_from_csv(schema(), "utc,branch,price\n1,Chi,NaN\n").unwrap_err();
        assert!(e.message.contains("NaN"));
    }

    #[test]
    fn blank_lines_skipped_and_field_count_checked() {
        let t = table_from_csv(schema(), "utc,branch,price\n\n1,Chi,1.0\n\n").unwrap();
        assert_eq!(t.len(), 1);
        let e = table_from_csv(schema(), "utc,branch,price\n1,Chi\n").unwrap_err();
        assert!(e.message.contains("expected 3 fields"));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let e = table_from_csv(schema(), "utc,branch,price\n1,\"Chi,1.0\n").unwrap_err();
        assert!(e.message.contains("unterminated"));
    }
}
