use crate::Table;
use pc_predicate::Predicate;

/// Row indices of `table` satisfying `pred`, evaluated column-at-a-time.
///
/// Atoms are applied in sequence, shrinking the candidate set; this is the
/// standard columnar filter pattern and avoids materializing encoded rows.
pub fn filter_indices(table: &Table, pred: &Predicate) -> Vec<usize> {
    let mut live: Vec<usize> = (0..table.len()).collect();
    for atom in pred.atoms() {
        let col = table.column(atom.attr);
        live.retain(|&r| atom.interval.contains(col.encoded(r)));
        if live.is_empty() {
            break;
        }
    }
    live
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{Atom, AttrType, Schema, Value};

    fn numbers() -> Table {
        let schema = Schema::new(vec![("x", AttrType::Int), ("y", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..10 {
            t.push_row(vec![Value::Int(i), Value::Float(i as f64 * 1.5)]);
        }
        t
    }

    #[test]
    fn empty_predicate_selects_all() {
        let t = numbers();
        assert_eq!(filter_indices(&t, &Predicate::always()).len(), 10);
    }

    #[test]
    fn conjunction_narrows() {
        let t = numbers();
        let p = Predicate::always()
            .and(Atom::between(0, 2.0, 7.0))
            .and(Atom::between(1, 0.0, 9.0)); // y = 1.5x ≤ 9 → x ≤ 6
        let got = filter_indices(&t, &p);
        assert_eq!(got, vec![2, 3, 4, 5, 6]);
    }

    #[test]
    fn contradictory_predicate_selects_none() {
        let t = numbers();
        let p = Predicate::always()
            .and(Atom::between(0, 0.0, 3.0))
            .and(Atom::between(0, 5.0, 9.0));
        assert!(filter_indices(&t, &p).is_empty());
    }
}
