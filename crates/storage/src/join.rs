use crate::Table;
use pc_predicate::Schema;
use std::collections::HashMap;

/// Natural (inner equi-) join of two tables on all shared attribute names.
///
/// A classic build/probe hash join; the output schema is `left`'s
/// attributes followed by `right`'s non-shared attributes. Keys compare by
/// *encoded* value, so joining categorical columns across tables assumes a
/// shared dictionary — the synthetic join workloads (§6.6.3) use integer
/// keys, which need no dictionary at all.
///
/// # Panics
/// Panics if the tables share no attribute names (a Cartesian product is
/// never what the ground-truth executor should silently compute) or if a
/// shared attribute has conflicting types.
pub fn natural_join(left: &Table, right: &Table) -> Table {
    let ls = left.schema();
    let rs = right.schema();
    let mut shared: Vec<(usize, usize)> = Vec::new();
    for (li, name, lty) in ls.iter() {
        if let Some(ri) = rs.index_of(name) {
            assert_eq!(
                lty,
                rs.attr_type(ri),
                "shared attribute `{name}` has conflicting types"
            );
            shared.push((li, ri));
        }
    }
    assert!(
        !shared.is_empty(),
        "natural join requires at least one shared attribute"
    );
    let right_extra: Vec<usize> = (0..rs.width())
        .filter(|ri| !shared.iter().any(|&(_, sri)| sri == *ri))
        .collect();

    let out_schema = Schema::new(
        ls.iter()
            .map(|(_, n, t)| (n.to_string(), t))
            .chain(
                right_extra
                    .iter()
                    .map(|&ri| (rs.attr_name(ri).to_string(), rs.attr_type(ri))),
            )
            .collect(),
    );
    let mut out = Table::new(out_schema);

    // Build on the smaller side for memory; we always build on `right`
    // here for simplicity — tables in the experiments are similar sizes.
    let mut index: HashMap<Vec<u64>, Vec<usize>> = HashMap::new();
    for r in 0..right.len() {
        let key: Vec<u64> = shared
            .iter()
            .map(|&(_, ri)| right.encoded(r, ri).to_bits())
            .collect();
        index.entry(key).or_default().push(r);
    }

    for l in 0..left.len() {
        let key: Vec<u64> = shared
            .iter()
            .map(|&(li, _)| left.encoded(l, li).to_bits())
            .collect();
        if let Some(matches) = index.get(&key) {
            for &r in matches {
                let mut row = left.row(l);
                for &ri in &right_extra {
                    row.push(right.column(ri).value(r));
                }
                out.push_row(row);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{AttrType, Value};

    fn edges(pairs: &[(i64, i64)], a: &str, b: &str) -> Table {
        let schema = Schema::new(vec![
            (a.to_string(), AttrType::Int),
            (b.to_string(), AttrType::Int),
        ]);
        let mut t = Table::new(schema);
        for &(x, y) in pairs {
            t.push_row(vec![Value::Int(x), Value::Int(y)]);
        }
        t
    }

    #[test]
    fn two_way_join() {
        let r = edges(&[(1, 10), (2, 20), (3, 20)], "x", "y");
        let s = edges(&[(20, 100), (20, 200), (30, 300)], "y", "z");
        let j = natural_join(&r, &s);
        // y=20 matches rows (2,20) and (3,20) × two s-rows = 4 results
        assert_eq!(j.len(), 4);
        assert_eq!(j.schema().width(), 3);
        assert_eq!(j.schema().index_of("z"), Some(2));
    }

    #[test]
    fn triangle_query_ground_truth() {
        // R(a,b) ⋈ S(b,c) ⋈ T(c,a): count triangles in a 3-cycle + noise
        let r = edges(&[(1, 2), (2, 3), (5, 6)], "a", "b");
        let s = edges(&[(2, 3), (3, 1), (6, 9)], "b", "c");
        let t = edges(&[(3, 1), (1, 2), (9, 7)], "c", "a");
        let rs = natural_join(&r, &s);
        let rst = natural_join(&rs, &t);
        // the directed 3-cycle 1→2→3→1 matches as (a,b,c) = (1,2,3) via
        // T(3,1) and as the rotation (2,3,1) via T(1,2); the rotation
        // (3,1,2) needs R(3,1), which is absent — so exactly 2 rows.
        assert_eq!(rst.len(), 2);
        let row = rst.row(0);
        assert_eq!(row[0], Value::Int(1)); // a
        assert_eq!(row[1], Value::Int(2)); // b
        assert_eq!(row[2], Value::Int(3)); // c
    }

    #[test]
    fn no_matches_empty_output() {
        let r = edges(&[(1, 1)], "x", "y");
        let s = edges(&[(2, 2)], "y", "z");
        assert!(natural_join(&r, &s).is_empty());
    }

    #[test]
    #[should_panic(expected = "shared attribute")]
    fn disjoint_schemas_rejected() {
        let r = edges(&[(1, 1)], "a", "b");
        let s = edges(&[(1, 1)], "c", "d");
        natural_join(&r, &s);
    }

    #[test]
    fn join_on_two_shared_attrs() {
        let r = edges(&[(1, 2), (1, 3)], "a", "b");
        let s = edges(&[(1, 2), (1, 9)], "a", "b");
        let j = natural_join(&r, &s);
        assert_eq!(j.len(), 1); // only (1,2) matches on both attrs
        assert_eq!(j.schema().width(), 2);
    }
}
