use pc_predicate::{AttrType, Value};

/// A typed column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit integers.
    Int(Vec<i64>),
    /// 64-bit floats (NaN-free by construction).
    Float(Vec<f64>),
    /// Dictionary codes.
    Cat(Vec<u32>),
}

impl Column {
    /// An empty column of the given type.
    pub fn empty(ty: AttrType) -> Self {
        match ty {
            AttrType::Int => Column::Int(Vec::new()),
            AttrType::Float => Column::Float(Vec::new()),
            AttrType::Cat => Column::Cat(Vec::new()),
        }
    }

    /// The column's attribute type.
    pub fn attr_type(&self) -> AttrType {
        match self {
            Column::Int(_) => AttrType::Int,
            Column::Float(_) => AttrType::Float,
            Column::Cat(_) => AttrType::Cat,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Float(v) => v.len(),
            Column::Cat(v) => v.len(),
        }
    }

    /// True if the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a value; the value's variant must match the column type.
    ///
    /// # Panics
    /// Panics on a type mismatch or NaN float — both indicate caller bugs
    /// the storage layer refuses to absorb.
    pub fn push(&mut self, v: &Value) {
        match (self, v) {
            (Column::Int(col), Value::Int(x)) => col.push(*x),
            (Column::Float(col), Value::Float(x)) => {
                assert!(!x.is_nan(), "NaN cannot be stored");
                col.push(*x);
            }
            (Column::Cat(col), Value::Cat(x)) => col.push(*x),
            (col, v) => panic!("type mismatch: {:?} column, {v:?} value", col.attr_type()),
        }
    }

    /// The encoded (`f64`) value at `row`.
    #[inline]
    pub fn encoded(&self, row: usize) -> f64 {
        match self {
            Column::Int(v) => v[row] as f64,
            Column::Float(v) => v[row],
            Column::Cat(v) => f64::from(v[row]),
        }
    }

    /// The typed value at `row`.
    pub fn value(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Float(v) => Value::Float(v[row]),
            Column::Cat(v) => Value::Cat(v[row]),
        }
    }

    /// Materialize a subset of rows as a new column.
    pub fn gather(&self, rows: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(rows.iter().map(|&r| v[r]).collect()),
            Column::Float(v) => Column::Float(rows.iter().map(|&r| v[r]).collect()),
            Column::Cat(v) => Column::Cat(rows.iter().map(|&r| v[r]).collect()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut c = Column::empty(AttrType::Float);
        c.push(&Value::Float(1.5));
        c.push(&Value::Float(-2.5));
        assert_eq!(c.len(), 2);
        assert_eq!(c.encoded(1), -2.5);
        assert_eq!(c.value(0), Value::Float(1.5));
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let mut c = Column::empty(AttrType::Int);
        c.push(&Value::Float(1.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut c = Column::empty(AttrType::Float);
        c.push(&Value::Float(f64::NAN));
    }

    #[test]
    fn gather_subset() {
        let c = Column::Int(vec![10, 20, 30, 40]);
        let g = c.gather(&[3, 1]);
        assert_eq!(g, Column::Int(vec![40, 20]));
    }
}
