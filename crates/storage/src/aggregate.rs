use crate::{filter_indices, Table};
use pc_predicate::Predicate;

/// The aggregate functions supported by the PC framework (§2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggKind {
    /// `COUNT(*)`
    Count,
    /// `SUM(attr)`
    Sum,
    /// `AVG(attr)`
    Avg,
    /// `MIN(attr)`
    Min,
    /// `MAX(attr)`
    Max,
}

impl AggKind {
    /// Display name matching SQL.
    pub fn name(self) -> &'static str {
        match self {
            AggKind::Count => "COUNT",
            AggKind::Sum => "SUM",
            AggKind::Avg => "AVG",
            AggKind::Min => "MIN",
            AggKind::Max => "MAX",
        }
    }
}

/// A single-aggregate query `SELECT agg(attr) FROM R WHERE pred`.
///
/// `attr` is ignored for `COUNT`. GROUP-BY queries decompose into one
/// `AggQuery` per group (paper §2), so the framework only needs this form.
#[derive(Debug, Clone)]
pub struct AggQuery {
    /// Which aggregate.
    pub agg: AggKind,
    /// Aggregated attribute index (ignored for COUNT).
    pub attr: usize,
    /// The WHERE clause.
    pub predicate: Predicate,
}

impl AggQuery {
    /// `SELECT COUNT(*) WHERE pred`.
    pub fn count(predicate: Predicate) -> Self {
        AggQuery {
            agg: AggKind::Count,
            attr: 0,
            predicate,
        }
    }

    /// `SELECT agg(attr) WHERE pred`.
    pub fn new(agg: AggKind, attr: usize, predicate: Predicate) -> Self {
        AggQuery {
            agg,
            attr,
            predicate,
        }
    }
}

/// The result of evaluating an [`AggQuery`] on concrete data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggResult {
    /// A defined numeric result.
    Value(f64),
    /// The aggregate of zero rows (`SUM`/`COUNT` of nothing are 0 by SQL
    /// semantics handled by callers; `AVG`/`MIN`/`MAX` are undefined).
    Empty,
}

impl AggResult {
    /// The numeric value, or `default` when empty.
    pub fn unwrap_or(self, default: f64) -> f64 {
        match self {
            AggResult::Value(v) => v,
            AggResult::Empty => default,
        }
    }

    /// The numeric value; panics when empty.
    pub fn value(self) -> f64 {
        match self {
            AggResult::Value(v) => v,
            AggResult::Empty => panic!("aggregate over zero rows has no value"),
        }
    }
}

/// Evaluate an aggregate query over a table — the ground-truth executor.
pub fn evaluate(table: &Table, query: &AggQuery) -> AggResult {
    let rows = filter_indices(table, &query.predicate);
    evaluate_on_rows(table, query, &rows)
}

/// Evaluate over an explicit row subset (used by sampling baselines).
pub fn evaluate_on_rows(table: &Table, query: &AggQuery, rows: &[usize]) -> AggResult {
    match query.agg {
        AggKind::Count => AggResult::Value(rows.len() as f64),
        AggKind::Sum => {
            if rows.is_empty() {
                // SQL SUM of no rows is NULL, but every framework in the
                // paper treats it as contributing 0 to totals.
                return AggResult::Value(0.0);
            }
            let col = table.column(query.attr);
            AggResult::Value(rows.iter().map(|&r| col.encoded(r)).sum())
        }
        AggKind::Avg => {
            if rows.is_empty() {
                return AggResult::Empty;
            }
            let col = table.column(query.attr);
            let sum: f64 = rows.iter().map(|&r| col.encoded(r)).sum();
            AggResult::Value(sum / rows.len() as f64)
        }
        AggKind::Min => fold_extreme(table, query.attr, rows, f64::min),
        AggKind::Max => fold_extreme(table, query.attr, rows, f64::max),
    }
}

fn fold_extreme(table: &Table, attr: usize, rows: &[usize], op: fn(f64, f64) -> f64) -> AggResult {
    if rows.is_empty() {
        return AggResult::Empty;
    }
    let col = table.column(attr);
    let mut acc = col.encoded(rows[0]);
    for &r in &rows[1..] {
        acc = op(acc, col.encoded(r));
    }
    AggResult::Value(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{Atom, AttrType, Schema, Value};

    fn table() -> Table {
        let schema = Schema::new(vec![("g", AttrType::Int), ("v", AttrType::Float)]);
        let mut t = Table::new(schema);
        for (g, v) in [(0, 1.0), (0, 2.0), (1, 10.0), (1, 20.0), (1, 30.0)] {
            t.push_row(vec![Value::Int(g), Value::Float(v)]);
        }
        t
    }

    #[test]
    fn all_five_aggregates() {
        let t = table();
        let p = Predicate::atom(Atom::eq(0, 1.0));
        assert_eq!(
            evaluate(&t, &AggQuery::count(p.clone())),
            AggResult::Value(3.0)
        );
        assert_eq!(
            evaluate(&t, &AggQuery::new(AggKind::Sum, 1, p.clone())),
            AggResult::Value(60.0)
        );
        assert_eq!(
            evaluate(&t, &AggQuery::new(AggKind::Avg, 1, p.clone())),
            AggResult::Value(20.0)
        );
        assert_eq!(
            evaluate(&t, &AggQuery::new(AggKind::Min, 1, p.clone())),
            AggResult::Value(10.0)
        );
        assert_eq!(
            evaluate(&t, &AggQuery::new(AggKind::Max, 1, p)),
            AggResult::Value(30.0)
        );
    }

    #[test]
    fn empty_semantics() {
        let t = table();
        let nothing = Predicate::atom(Atom::eq(0, 99.0));
        assert_eq!(
            evaluate(&t, &AggQuery::count(nothing.clone())),
            AggResult::Value(0.0)
        );
        assert_eq!(
            evaluate(&t, &AggQuery::new(AggKind::Sum, 1, nothing.clone())),
            AggResult::Value(0.0)
        );
        assert_eq!(
            evaluate(&t, &AggQuery::new(AggKind::Avg, 1, nothing.clone())),
            AggResult::Empty
        );
        assert_eq!(
            evaluate(&t, &AggQuery::new(AggKind::Min, 1, nothing)),
            AggResult::Empty
        );
    }

    #[test]
    fn evaluate_on_explicit_rows() {
        let t = table();
        let q = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        assert_eq!(evaluate_on_rows(&t, &q, &[0, 4]), AggResult::Value(31.0));
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn empty_value_panics() {
        AggResult::Empty.value();
    }
}
