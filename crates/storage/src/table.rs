use crate::{Column, Dictionary};
use pc_predicate::{AttrType, Predicate, Schema, Value};

/// An in-memory columnar table.
///
/// Each categorical attribute owns a [`Dictionary`]; other attributes have
/// a `None` slot so dictionaries index by attribute position.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Column>,
    dicts: Vec<Option<Dictionary>>,
}

impl Table {
    /// An empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.width())
            .map(|i| Column::empty(schema.attr_type(i)))
            .collect();
        let dicts = (0..schema.width())
            .map(|i| {
                if schema.attr_type(i) == AttrType::Cat {
                    Some(Dictionary::new())
                } else {
                    None
                }
            })
            .collect();
        Table {
            schema,
            columns,
            dicts,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a fully-typed row.
    ///
    /// # Panics
    /// Panics if the row width or any value type disagrees with the schema.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.schema.width(), "row width mismatch");
        for (col, v) in self.columns.iter_mut().zip(&row) {
            col.push(v);
        }
    }

    /// Intern a categorical label for attribute `attr`, returning its code.
    ///
    /// # Panics
    /// Panics if `attr` is not categorical.
    pub fn intern(&mut self, attr: usize, label: &str) -> u32 {
        self.dicts[attr]
            .as_mut()
            .unwrap_or_else(|| {
                panic!(
                    "attribute {} is not categorical",
                    self.schema.attr_name(attr)
                )
            })
            .intern(label)
    }

    /// The dictionary of a categorical attribute, if any.
    pub fn dictionary(&self, attr: usize) -> Option<&Dictionary> {
        self.dicts[attr].as_ref()
    }

    /// Direct access to a column.
    pub fn column(&self, attr: usize) -> &Column {
        &self.columns[attr]
    }

    /// The encoded (`f64`) value at `(row, attr)`.
    #[inline]
    pub fn encoded(&self, row: usize, attr: usize) -> f64 {
        self.columns[attr].encoded(row)
    }

    /// Write the encoded row into `buf` (must have schema width).
    pub fn encode_row_into(&self, row: usize, buf: &mut [f64]) {
        for (attr, slot) in buf.iter_mut().enumerate() {
            *slot = self.encoded(row, attr);
        }
    }

    /// The encoded row as a fresh vector.
    pub fn encoded_row(&self, row: usize) -> Vec<f64> {
        (0..self.schema.width())
            .map(|a| self.encoded(row, a))
            .collect()
    }

    /// The typed row.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.value(row)).collect()
    }

    /// Materialize a subset of rows as a new table (dictionaries are
    /// shared by clone so codes remain stable).
    pub fn select(&self, rows: &[usize]) -> Table {
        Table {
            schema: self.schema.clone(),
            columns: self.columns.iter().map(|c| c.gather(rows)).collect(),
            dicts: self.dicts.clone(),
        }
    }

    /// Split rows into `(matching, rest)` tables by a predicate over
    /// encoded values. Used by missing-data injectors: `matching` becomes
    /// the missing partition `R?`, `rest` the certain partition `R*`.
    pub fn partition_by(&self, pred: &Predicate) -> (Table, Table) {
        let mut hit = Vec::new();
        let mut miss = Vec::new();
        let mut buf = vec![0.0; self.schema.width()];
        for r in 0..self.len() {
            self.encode_row_into(r, &mut buf);
            if pred.eval(&buf) {
                hit.push(r);
            } else {
                miss.push(r);
            }
        }
        (self.select(&hit), self.select(&miss))
    }

    /// Split by explicit row indices into `(selected, rest)`.
    pub fn split_rows(&self, rows: &[usize]) -> (Table, Table) {
        let mut mark = vec![false; self.len()];
        for &r in rows {
            mark[r] = true;
        }
        let rest: Vec<usize> = (0..self.len()).filter(|&r| !mark[r]).collect();
        (self.select(rows), self.select(&rest))
    }

    /// Min and max encoded value of an attribute over all rows, or `None`
    /// for an empty table.
    pub fn attr_range(&self, attr: usize) -> Option<(f64, f64)> {
        if self.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for r in 0..self.len() {
            let v = self.encoded(r, attr);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::Atom;

    fn sales() -> Table {
        let schema = Schema::new(vec![
            ("utc", AttrType::Int),
            ("branch", AttrType::Cat),
            ("price", AttrType::Float),
        ]);
        let mut t = Table::new(schema);
        let chi = t.intern(1, "Chicago");
        let ny = t.intern(1, "New York");
        t.push_row(vec![Value::Int(1), Value::Cat(chi), Value::Float(3.02)]);
        t.push_row(vec![Value::Int(2), Value::Cat(ny), Value::Float(6.71)]);
        t.push_row(vec![Value::Int(3), Value::Cat(chi), Value::Float(18.99)]);
        t
    }

    #[test]
    fn build_and_read() {
        let t = sales();
        assert_eq!(t.len(), 3);
        assert_eq!(t.encoded(2, 2), 18.99);
        assert_eq!(t.row(1)[1], Value::Cat(1));
        assert_eq!(t.dictionary(1).unwrap().label(0), Some("Chicago"));
    }

    #[test]
    fn encode_row_matches_columns() {
        let t = sales();
        assert_eq!(t.encoded_row(0), vec![1.0, 0.0, 3.02]);
    }

    #[test]
    fn partition_by_predicate() {
        let t = sales();
        let chicago = Predicate::atom(Atom::eq(1, 0.0));
        let (hit, rest) = t.partition_by(&chicago);
        assert_eq!(hit.len(), 2);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest.encoded(0, 2), 6.71);
    }

    #[test]
    fn split_rows_partitions() {
        let t = sales();
        let (a, b) = t.split_rows(&[0, 2]);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(a.encoded(1, 0), 3.0);
    }

    #[test]
    fn attr_range() {
        let t = sales();
        assert_eq!(t.attr_range(2), Some((3.02, 18.99)));
        let empty = Table::new(t.schema().clone());
        assert_eq!(empty.attr_range(0), None);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_rejected() {
        let mut t = sales();
        t.push_row(vec![Value::Int(1)]);
    }

    #[test]
    #[should_panic(expected = "not categorical")]
    fn intern_on_numeric_attr_panics() {
        let mut t = sales();
        t.intern(0, "oops");
    }
}
