//! Property-based tests for the storage engine against brute-force
//! oracles: columnar filters vs row-at-a-time scans, aggregate identities,
//! hash joins vs nested loops, and grid-partition totality.

use pc_predicate::{Atom, AttrType, Interval, Predicate, Schema, Value};
use pc_storage::{
    evaluate, filter_indices, natural_join, AggKind, AggQuery, AggResult, GridPartitioner, Table,
};
use proptest::prelude::*;

fn table_from(rows: &[(i64, i64)]) -> Table {
    let schema = Schema::new(vec![("g", AttrType::Int), ("v", AttrType::Int)]);
    let mut t = Table::new(schema);
    for &(g, v) in rows {
        t.push_row(vec![Value::Int(g), Value::Int(v)]);
    }
    t
}

prop_compose! {
    fn arb_rows()(rows in prop::collection::vec((0i64..6, 0i64..20), 0..40)) -> Vec<(i64, i64)> {
        rows
    }
}

prop_compose! {
    fn arb_pred()(a in 0i64..6, b in 0i64..6, c in 0i64..20, d in 0i64..20) -> Predicate {
        Predicate::always()
            .and(Atom::between(0, a.min(b) as f64, a.max(b) as f64))
            .and(Atom::between(1, c.min(d) as f64, c.max(d) as f64))
    }
}

proptest! {
    #[test]
    fn filter_matches_scan(rows in arb_rows(), pred in arb_pred()) {
        let t = table_from(&rows);
        let fast = filter_indices(&t, &pred);
        let slow: Vec<usize> = (0..t.len())
            .filter(|&r| pred.eval(&t.encoded_row(r)))
            .collect();
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn aggregates_match_manual(rows in arb_rows(), pred in arb_pred()) {
        let t = table_from(&rows);
        let matched: Vec<i64> = rows
            .iter()
            .filter(|(g, v)| pred.eval(&[*g as f64, *v as f64]))
            .map(|(_, v)| *v)
            .collect();

        let count = evaluate(&t, &AggQuery::count(pred.clone()));
        prop_assert_eq!(count, AggResult::Value(matched.len() as f64));

        let sum = evaluate(&t, &AggQuery::new(AggKind::Sum, 1, pred.clone()));
        prop_assert_eq!(sum, AggResult::Value(matched.iter().sum::<i64>() as f64));

        let min = evaluate(&t, &AggQuery::new(AggKind::Min, 1, pred.clone()));
        let max = evaluate(&t, &AggQuery::new(AggKind::Max, 1, pred.clone()));
        match (matched.iter().min(), matched.iter().max()) {
            (Some(&lo), Some(&hi)) => {
                prop_assert_eq!(min, AggResult::Value(lo as f64));
                prop_assert_eq!(max, AggResult::Value(hi as f64));
            }
            _ => {
                prop_assert_eq!(min, AggResult::Empty);
                prop_assert_eq!(max, AggResult::Empty);
            }
        }
    }

    #[test]
    fn partition_by_is_a_partition(rows in arb_rows(), pred in arb_pred()) {
        let t = table_from(&rows);
        let (hit, miss) = t.partition_by(&pred);
        prop_assert_eq!(hit.len() + miss.len(), t.len());
        for r in 0..hit.len() {
            prop_assert!(pred.eval(&hit.encoded_row(r)));
        }
        for r in 0..miss.len() {
            prop_assert!(!pred.eval(&miss.encoded_row(r)));
        }
    }

    #[test]
    fn join_matches_nested_loop(
        left in prop::collection::vec((0i64..5, 0i64..5), 0..15),
        right in prop::collection::vec((0i64..5, 0i64..5), 0..15),
    ) {
        let l = {
            let schema = Schema::new(vec![("a", AttrType::Int), ("b", AttrType::Int)]);
            let mut t = Table::new(schema);
            for &(x, y) in &left {
                t.push_row(vec![Value::Int(x), Value::Int(y)]);
            }
            t
        };
        let r = {
            let schema = Schema::new(vec![("b", AttrType::Int), ("c", AttrType::Int)]);
            let mut t = Table::new(schema);
            for &(x, y) in &right {
                t.push_row(vec![Value::Int(x), Value::Int(y)]);
            }
            t
        };
        let joined = natural_join(&l, &r);
        let expected: usize = left
            .iter()
            .map(|(_, b)| right.iter().filter(|(rb, _)| rb == b).count())
            .sum();
        prop_assert_eq!(joined.len(), expected);
        // every output row's b matches in both inputs
        for i in 0..joined.len() {
            let row = joined.encoded_row(i);
            prop_assert!(left.iter().any(|&(a, b)| a as f64 == row[0] && b as f64 == row[1]));
            prop_assert!(right.iter().any(|&(b, c)| b as f64 == row[1] && c as f64 == row[2]));
        }
    }

    #[test]
    fn grid_cells_partition_rows(rows in arb_rows(), buckets in 1usize..6) {
        prop_assume!(!rows.is_empty());
        let t = table_from(&rows);
        let grid = GridPartitioner::from_table(&t, &[1], &[buckets]);
        let cells = grid.assign(&t);
        prop_assert_eq!(cells.iter().map(Vec::len).sum::<usize>(), t.len());
        // each row satisfies exactly one cell predicate
        for r in 0..t.len() {
            let enc = t.encoded_row(r);
            let hits = (0..grid.num_cells())
                .filter(|&c| grid.cell_predicate(c).eval(&enc))
                .count();
            prop_assert_eq!(hits, 1, "row must land in exactly one grid cell");
        }
    }

    #[test]
    fn select_preserves_values(rows in arb_rows(), mask in prop::collection::vec(any::<bool>(), 0..40)) {
        let t = table_from(&rows);
        let picked: Vec<usize> = (0..t.len())
            .filter(|&r| mask.get(r).copied().unwrap_or(false))
            .collect();
        let sub = t.select(&picked);
        prop_assert_eq!(sub.len(), picked.len());
        for (i, &r) in picked.iter().enumerate() {
            prop_assert_eq!(sub.encoded_row(i), t.encoded_row(r));
        }
    }

    #[test]
    fn interval_filter_equivalence(rows in arb_rows(), lo in 0i64..20, hi in 0i64..20) {
        // an open interval over Int behaves as its normalized closed form
        let t = table_from(&rows);
        let open = Predicate::atom(Atom::new(1, Interval::open(lo as f64, hi as f64)));
        let closed = Predicate::atom(Atom::new(
            1,
            Interval::open(lo as f64, hi as f64).normalize(AttrType::Int),
        ));
        prop_assert_eq!(filter_indices(&t, &open), filter_indices(&t, &closed));
    }
}
