//! A small shared lexer for the library's text surfaces: the SQL-ish
//! aggregate query parser (`pc-storage`) and the predicate-constraint
//! notation parser (`pc-core`). No dependencies, byte-precise error
//! positions.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (`SELECT`, `price`, `AND`, …).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Single-quoted string literal (quotes stripped, `''` escapes a
    /// quote).
    Str(String),
    /// One of `( ) , * =>` or a comparison operator.
    Symbol(Sym),
}

/// Punctuation and operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `!=` / `<>`
    Ne,
    /// `=>` (the implication arrow of constraint notation)
    Arrow,
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Sym::LParen => "(",
            Sym::RParen => ")",
            Sym::Comma => ",",
            Sym::Star => "*",
            Sym::Eq => "=",
            Sym::Lt => "<",
            Sym::Le => "<=",
            Sym::Gt => ">",
            Sym::Ge => ">=",
            Sym::Ne => "!=",
            Sym::Arrow => "=>",
        };
        write!(f, "{s}")
    }
}

/// A lexing/parsing error with a byte position into the source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Byte offset of the problem.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    /// Construct an error.
    pub fn new(at: usize, message: impl Into<String>) -> Self {
        ParseError {
            at,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Tokenize a source string. Keywords are not distinguished from
/// identifiers at this level; parsers match case-insensitively.
pub fn tokenize(src: &str) -> Result<Vec<(usize, Token)>, ParseError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((i, Token::Symbol(Sym::LParen)));
                i += 1;
            }
            ')' => {
                out.push((i, Token::Symbol(Sym::RParen)));
                i += 1;
            }
            ',' => {
                out.push((i, Token::Symbol(Sym::Comma)));
                i += 1;
            }
            '*' => {
                out.push((i, Token::Symbol(Sym::Star)));
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push((i, Token::Symbol(Sym::Arrow)));
                    i += 2;
                } else {
                    out.push((i, Token::Symbol(Sym::Eq)));
                    i += 1;
                }
            }
            '<' => match bytes.get(i + 1) {
                Some(b'=') => {
                    out.push((i, Token::Symbol(Sym::Le)));
                    i += 2;
                }
                Some(b'>') => {
                    out.push((i, Token::Symbol(Sym::Ne)));
                    i += 2;
                }
                _ => {
                    out.push((i, Token::Symbol(Sym::Lt)));
                    i += 1;
                }
            },
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Token::Symbol(Sym::Ge)));
                    i += 2;
                } else {
                    out.push((i, Token::Symbol(Sym::Gt)));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((i, Token::Symbol(Sym::Ne)));
                    i += 2;
                } else {
                    return Err(ParseError::new(i, "expected `!=`"));
                }
            }
            '\'' => {
                let start = i;
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(ParseError::new(start, "unterminated string literal")),
                        Some(b'\'') => {
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push((start, Token::Str(s)));
            }
            '0'..='9' | '.' | '-' | '+' => {
                let start = i;
                i += 1;
                while i < bytes.len()
                    && matches!(bytes[i] as char, '0'..='9' | '.' | 'e' | 'E' | '_')
                {
                    // allow exponent signs directly after e/E
                    if matches!(bytes[i] as char, 'e' | 'E')
                        && matches!(bytes.get(i + 1).map(|b| *b as char), Some('+') | Some('-'))
                    {
                        i += 1;
                    }
                    i += 1;
                }
                let text: String = src[start..i].chars().filter(|c| *c != '_').collect();
                let n: f64 = text
                    .parse()
                    .map_err(|_| ParseError::new(start, format!("bad number `{text}`")))?;
                out.push((start, Token::Number(n)));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_' | '.')
                {
                    i += 1;
                }
                out.push((start, Token::Ident(src[start..i].to_string())));
            }
            other => {
                return Err(ParseError::new(
                    i,
                    format!("unexpected character `{other}`"),
                ));
            }
        }
    }
    Ok(out)
}

/// A token cursor with convenience matchers shared by both parsers.
pub struct Cursor<'a> {
    tokens: &'a [(usize, Token)],
    pos: usize,
    len: usize,
}

impl<'a> Cursor<'a> {
    /// Wrap a token stream; `src_len` is used for end-of-input error
    /// positions.
    pub fn new(tokens: &'a [(usize, Token)], src_len: usize) -> Self {
        Cursor {
            tokens,
            pos: 0,
            len: src_len,
        }
    }

    /// The current token, if any.
    pub fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    /// Byte position of the current token (or end of input).
    pub fn at(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|(p, _)| *p)
            .unwrap_or(self.len)
    }

    /// Advance and return the token.
    pub fn advance(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t);
        self.pos += 1;
        t
    }

    /// True at end of input.
    pub fn done(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consume a keyword (case-insensitive identifier); error otherwise.
    pub fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        let at = self.at();
        match self.advance() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(ParseError::new(
                at,
                format!("expected `{kw}`, found {other:?}"),
            )),
        }
    }

    /// Consume a keyword if present.
    pub fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consume a symbol; error otherwise.
    pub fn expect_symbol(&mut self, sym: Sym) -> Result<(), ParseError> {
        let at = self.at();
        match self.advance() {
            Some(Token::Symbol(s)) if *s == sym => Ok(()),
            other => Err(ParseError::new(
                at,
                format!("expected `{sym}`, found {other:?}"),
            )),
        }
    }

    /// Consume a symbol if present.
    pub fn eat_symbol(&mut self, sym: Sym) -> bool {
        if let Some(Token::Symbol(s)) = self.peek() {
            if *s == sym {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consume an identifier.
    pub fn expect_ident(&mut self) -> Result<String, ParseError> {
        let at = self.at();
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s.clone()),
            other => Err(ParseError::new(
                at,
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    /// Consume a numeric literal.
    pub fn expect_number(&mut self) -> Result<f64, ParseError> {
        let at = self.at();
        match self.advance() {
            Some(Token::Number(n)) => Ok(*n),
            other => Err(ParseError::new(
                at,
                format!("expected number, found {other:?}"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        tokenize(src).unwrap().into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("SELECT SUM(price)"),
            vec![
                Token::Ident("SELECT".into()),
                Token::Ident("SUM".into()),
                Token::Symbol(Sym::LParen),
                Token::Ident("price".into()),
                Token::Symbol(Sym::RParen),
            ]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("a <= 1 >= < > != <> => ="),
            vec![
                Token::Ident("a".into()),
                Token::Symbol(Sym::Le),
                Token::Number(1.0),
                Token::Symbol(Sym::Ge),
                Token::Symbol(Sym::Lt),
                Token::Symbol(Sym::Gt),
                Token::Symbol(Sym::Ne),
                Token::Symbol(Sym::Ne),
                Token::Symbol(Sym::Arrow),
                Token::Symbol(Sym::Eq),
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("1 2.5 -3 1e3 1_000"),
            vec![
                Token::Number(1.0),
                Token::Number(2.5),
                Token::Number(-3.0),
                Token::Number(1000.0),
                Token::Number(1000.0),
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks("'Chicago' 'O''Hare'"),
            vec![Token::Str("Chicago".into()), Token::Str("O'Hare".into())]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        let e = tokenize("'oops").unwrap_err();
        assert!(e.message.contains("unterminated"));
        assert_eq!(e.at, 0);
    }

    #[test]
    fn bad_character_errors() {
        let e = tokenize("price @ 3").unwrap_err();
        assert!(e.message.contains('@'));
    }

    #[test]
    fn cursor_walkthrough() {
        let tokens = tokenize("COUNT ( * )").unwrap();
        let mut c = Cursor::new(&tokens, 11);
        assert!(c.eat_keyword("count"));
        c.expect_symbol(Sym::LParen).unwrap();
        assert!(c.eat_symbol(Sym::Star));
        c.expect_symbol(Sym::RParen).unwrap();
        assert!(c.done());
    }
}
