use crate::AttrType;
use std::fmt;

/// A one-dimensional interval over the `f64` number line with independently
/// open or closed endpoints. `±∞` endpoints are always treated as open.
///
/// Interval semantics are *type-aware*: over a discrete ([`AttrType::Int`] /
/// [`AttrType::Cat`]) domain the open interval `(1, 2)` is empty and the
/// complement of `[3, 5]` is `(-∞, 2] ∪ [6, +∞)`; over [`AttrType::Float`]
/// neither holds. Methods that depend on this take the attribute type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower endpoint (may be `f64::NEG_INFINITY`).
    pub lo: f64,
    /// Upper endpoint (may be `f64::INFINITY`).
    pub hi: f64,
    /// Whether the lower endpoint is excluded.
    pub lo_open: bool,
    /// Whether the upper endpoint is excluded.
    pub hi_open: bool,
}

impl Interval {
    /// The interval `(-∞, +∞)`.
    pub const FULL: Interval = Interval {
        lo: f64::NEG_INFINITY,
        hi: f64::INFINITY,
        lo_open: true,
        hi_open: true,
    };

    /// A canonical empty interval.
    pub const EMPTY: Interval = Interval {
        lo: 1.0,
        hi: 0.0,
        lo_open: false,
        hi_open: false,
    };

    /// Construct with explicit endpoint openness.
    ///
    /// # Panics
    /// Panics if an endpoint is NaN; the library never produces NaN bounds.
    pub fn new(lo: f64, lo_open: bool, hi: f64, hi_open: bool) -> Self {
        assert!(!lo.is_nan() && !hi.is_nan(), "NaN interval endpoint");
        Interval {
            lo,
            hi,
            lo_open: lo_open || lo == f64::NEG_INFINITY,
            hi_open: hi_open || hi == f64::INFINITY,
        }
    }

    /// The closed interval `[lo, hi]`.
    pub fn closed(lo: f64, hi: f64) -> Self {
        Interval::new(lo, false, hi, false)
    }

    /// The open interval `(lo, hi)`.
    pub fn open(lo: f64, hi: f64) -> Self {
        Interval::new(lo, true, hi, true)
    }

    /// The half-open interval `[lo, hi)` — the natural form for time
    /// buckets like `Nov-11 ≤ utc < Nov-12` in the paper's running example.
    pub fn half_open(lo: f64, hi: f64) -> Self {
        Interval::new(lo, false, hi, true)
    }

    /// The degenerate point interval `[v, v]`, i.e. an equality predicate.
    pub fn point(v: f64) -> Self {
        Interval::closed(v, v)
    }

    /// `(-∞, v]` or `(-∞, v)`.
    pub fn at_most(v: f64, open: bool) -> Self {
        Interval::new(f64::NEG_INFINITY, true, v, open)
    }

    /// `[v, +∞)` or `(v, +∞)`.
    pub fn at_least(v: f64, open: bool) -> Self {
        Interval::new(v, open, f64::INFINITY, true)
    }

    /// True if `v` lies in the interval.
    #[inline]
    pub fn contains(&self, v: f64) -> bool {
        let above = if self.lo_open {
            v > self.lo
        } else {
            v >= self.lo
        };
        let below = if self.hi_open {
            v < self.hi
        } else {
            v <= self.hi
        };
        above && below
    }

    /// Snap endpoints to the integer grid for discrete attribute types.
    /// For `Float` the interval is returned unchanged.
    ///
    /// After normalization a non-empty discrete interval has closed integer
    /// endpoints, which makes emptiness and complement exact.
    pub fn normalize(&self, ty: AttrType) -> Interval {
        if !ty.is_discrete() {
            return *self;
        }
        let lo = if self.lo == f64::NEG_INFINITY {
            self.lo
        } else if self.lo_open {
            self.lo.floor() + 1.0
        } else {
            self.lo.ceil()
        };
        let hi = if self.hi == f64::INFINITY {
            self.hi
        } else if self.hi_open {
            self.hi.ceil() - 1.0
        } else {
            self.hi.floor()
        };
        Interval {
            lo,
            hi,
            lo_open: lo == f64::NEG_INFINITY,
            hi_open: hi == f64::INFINITY,
        }
    }

    /// True if the interval contains no point of the given domain type.
    pub fn is_empty(&self, ty: AttrType) -> bool {
        let n = self.normalize(ty);
        if n.lo > n.hi {
            return true;
        }
        n.lo == n.hi && (n.lo_open || n.hi_open)
    }

    /// Intersection (the tightest interval contained in both).
    pub fn intersect(&self, other: &Interval) -> Interval {
        let (lo, lo_open) = if self.lo > other.lo {
            (self.lo, self.lo_open)
        } else if other.lo > self.lo {
            (other.lo, other.lo_open)
        } else {
            (self.lo, self.lo_open || other.lo_open)
        };
        let (hi, hi_open) = if self.hi < other.hi {
            (self.hi, self.hi_open)
        } else if other.hi < self.hi {
            (other.hi, other.hi_open)
        } else {
            (self.hi, self.hi_open || other.hi_open)
        };
        Interval {
            lo,
            hi,
            lo_open,
            hi_open,
        }
    }

    /// True if `self ⊇ other` over the given domain type.
    ///
    /// Both sides are normalized first so that, e.g., `[0, 4]` contains
    /// `(0.5, 3.5)` over the integers (`[1, 3]`).
    pub fn contains_interval(&self, other: &Interval, ty: AttrType) -> bool {
        if other.is_empty(ty) {
            return true;
        }
        let a = self.normalize(ty);
        let b = other.normalize(ty);
        let lo_ok = a.lo < b.lo || (a.lo == b.lo && (!a.lo_open || b.lo_open));
        let hi_ok = a.hi > b.hi || (a.hi == b.hi && (!a.hi_open || b.hi_open));
        lo_ok && hi_ok
    }

    /// The complement within the full line, as up to two intervals.
    ///
    /// Over discrete types the pieces have closed stepped endpoints
    /// (`¬[3,5] = (-∞,2] ∪ [6,∞)`); over floats they share the endpoint
    /// with flipped openness.
    pub fn complement(&self, ty: AttrType) -> Vec<Interval> {
        if self.is_empty(ty) {
            return vec![Interval::FULL];
        }
        let n = self.normalize(ty);
        let mut out = Vec::with_capacity(2);
        if n.lo != f64::NEG_INFINITY {
            let piece = if ty.is_discrete() {
                Interval::at_most(n.lo - 1.0, false)
            } else {
                Interval::at_most(n.lo, !n.lo_open)
            };
            if !piece.is_empty(ty) {
                out.push(piece);
            }
        }
        if n.hi != f64::INFINITY {
            let piece = if ty.is_discrete() {
                Interval::at_least(n.hi + 1.0, false)
            } else {
                Interval::at_least(n.hi, !n.hi_open)
            };
            if !piece.is_empty(ty) {
                out.push(piece);
            }
        }
        out
    }

    /// The least upper bound of values in the interval (its supremum).
    /// For an open float upper endpoint the supremum is not attained but is
    /// still a valid *bound* for aggregates.
    #[inline]
    pub fn sup(&self) -> f64 {
        self.hi
    }

    /// The greatest lower bound of values in the interval.
    #[inline]
    pub fn inf(&self) -> f64 {
        self.lo
    }

    /// True if both endpoints are finite.
    #[inline]
    pub fn is_bounded(&self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// A representative point inside the interval, if one exists.
    /// Used by tests and by witnesses for satisfiable cells.
    pub fn pick(&self, ty: AttrType) -> Option<f64> {
        if self.is_empty(ty) {
            return None;
        }
        let n = self.normalize(ty);
        if ty.is_discrete() {
            return Some(if n.lo.is_finite() {
                n.lo
            } else if n.hi.is_finite() {
                n.hi
            } else {
                0.0
            });
        }
        if n.lo.is_finite() && n.hi.is_finite() {
            if !n.lo_open {
                return Some(n.lo);
            }
            if !n.hi_open {
                return Some(n.hi);
            }
            return Some(n.lo + (n.hi - n.lo) / 2.0);
        }
        if n.lo.is_finite() {
            return Some(if n.lo_open { n.lo + 1.0 } else { n.lo });
        }
        if n.hi.is_finite() {
            return Some(if n.hi_open { n.hi - 1.0 } else { n.hi });
        }
        Some(0.0)
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}, {}{}",
            if self.lo_open { '(' } else { '[' },
            self.lo,
            self.hi,
            if self.hi_open { ')' } else { ']' },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: AttrType = AttrType::Float;
    const I: AttrType = AttrType::Int;

    #[test]
    fn contains_respects_openness() {
        let iv = Interval::half_open(1.0, 2.0);
        assert!(iv.contains(1.0));
        assert!(iv.contains(1.5));
        assert!(!iv.contains(2.0));
    }

    #[test]
    fn discrete_open_unit_interval_is_empty() {
        let iv = Interval::open(1.0, 2.0);
        assert!(iv.is_empty(I));
        assert!(!iv.is_empty(F));
    }

    #[test]
    fn discrete_normalization_steps_fractional_endpoints() {
        // x > 1.5 over ints means x >= 2
        let iv = Interval::at_least(1.5, true).normalize(I);
        assert_eq!(iv.lo, 2.0);
        assert!(!iv.lo_open);
        // x < 4.5 over ints means x <= 4
        let iv = Interval::at_most(4.5, true).normalize(I);
        assert_eq!(iv.hi, 4.0);
        assert!(!iv.hi_open);
    }

    #[test]
    fn float_empty_cases() {
        assert!(Interval::open(3.0, 3.0).is_empty(F));
        assert!(Interval::new(3.0, false, 3.0, true).is_empty(F));
        assert!(!Interval::point(3.0).is_empty(F));
        assert!(Interval::closed(5.0, 4.0).is_empty(F));
    }

    #[test]
    fn intersect_takes_tighter_bounds() {
        let a = Interval::closed(0.0, 10.0);
        let b = Interval::open(5.0, 20.0);
        let c = a.intersect(&b);
        assert_eq!((c.lo, c.hi), (5.0, 10.0));
        assert!(c.lo_open);
        assert!(!c.hi_open);
    }

    #[test]
    fn intersect_equal_endpoint_open_wins() {
        let a = Interval::closed(0.0, 5.0);
        let b = Interval::new(0.0, true, 5.0, false);
        let c = a.intersect(&b);
        assert!(c.lo_open);
        assert!(!c.hi_open);
    }

    #[test]
    fn containment_float() {
        let big = Interval::closed(0.0, 10.0);
        assert!(big.contains_interval(&Interval::open(0.0, 10.0), F));
        assert!(!Interval::open(0.0, 10.0).contains_interval(&big, F));
        assert!(Interval::FULL.contains_interval(&big, F));
    }

    #[test]
    fn containment_discrete_normalizes() {
        let a = Interval::closed(0.0, 4.0);
        let b = Interval::open(-0.5, 4.5); // ints: [0,4]
        assert!(a.contains_interval(&b, I));
        assert!(b.contains_interval(&a, I));
    }

    #[test]
    fn complement_float_closed() {
        let pieces = Interval::closed(2.0, 5.0).complement(F);
        assert_eq!(pieces.len(), 2);
        assert!(pieces[0].contains(1.999));
        assert!(!pieces[0].contains(2.0));
        assert!(!pieces[1].contains(5.0));
        assert!(pieces[1].contains(5.001));
    }

    #[test]
    fn complement_discrete_steps() {
        let pieces = Interval::closed(2.0, 5.0).complement(I);
        assert_eq!(pieces.len(), 2);
        assert!(pieces[0].contains(1.0));
        assert!(!pieces[0].contains(2.0));
        assert_eq!(pieces[0].hi, 1.0);
        assert_eq!(pieces[1].lo, 6.0);
    }

    #[test]
    fn complement_of_empty_is_full() {
        let pieces = Interval::EMPTY.complement(F);
        assert_eq!(pieces, vec![Interval::FULL]);
    }

    #[test]
    fn complement_of_half_line() {
        let pieces = Interval::at_most(3.0, false).complement(F);
        assert_eq!(pieces.len(), 1);
        assert!(pieces[0].contains(3.0001));
        assert!(!pieces[0].contains(3.0));
    }

    #[test]
    fn pick_returns_member() {
        for iv in [
            Interval::closed(1.0, 2.0),
            Interval::open(1.0, 2.0),
            Interval::at_least(5.0, true),
            Interval::at_most(-3.0, false),
            Interval::FULL,
        ] {
            let p = iv.pick(F).unwrap();
            assert!(iv.contains(p), "{iv} should contain pick {p}");
        }
        assert_eq!(Interval::EMPTY.pick(F), None);
        assert_eq!(Interval::open(1.0, 2.0).pick(I), None);
    }

    #[test]
    fn display_renders_brackets() {
        assert_eq!(Interval::half_open(1.0, 2.0).to_string(), "[1, 2)");
    }
}
