use crate::{AttrType, Interval, Schema};
use std::fmt;

/// A single range condition `attr ∈ interval` — the building block of
/// predicates. Equality (`branch = 'Chicago'`) is the point interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Atom {
    /// Index of the constrained attribute in the schema.
    pub attr: usize,
    /// The allowed range.
    pub interval: Interval,
}

impl Atom {
    /// `attr ∈ interval`.
    pub fn new(attr: usize, interval: Interval) -> Self {
        Atom { attr, interval }
    }

    /// `attr = v` as a point interval.
    pub fn eq(attr: usize, v: f64) -> Self {
        Atom::new(attr, Interval::point(v))
    }

    /// `lo ≤ attr ≤ hi`.
    pub fn between(attr: usize, lo: f64, hi: f64) -> Self {
        Atom::new(attr, Interval::closed(lo, hi))
    }

    /// `lo ≤ attr < hi` — the bucket form used throughout the paper.
    pub fn bucket(attr: usize, lo: f64, hi: f64) -> Self {
        Atom::new(attr, Interval::half_open(lo, hi))
    }

    /// Evaluate against an encoded row (one `f64` per schema attribute).
    #[inline]
    pub fn eval(&self, row: &[f64]) -> bool {
        self.interval.contains(row[self.attr])
    }

    /// The negation `attr ∉ interval` as a disjunction of atoms (0–2).
    pub fn negate(&self, ty: AttrType) -> Vec<Atom> {
        self.interval
            .complement(ty)
            .into_iter()
            .map(|iv| Atom::new(self.attr, iv))
            .collect()
    }

    /// Human-readable form using schema names.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Atom, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} ∈ {}", self.1.attr_name(self.0.attr), self.0.interval)
            }
        }
        D(self, schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_on_encoded_row() {
        let a = Atom::between(1, 0.0, 10.0);
        assert!(a.eval(&[99.0, 5.0]));
        assert!(!a.eval(&[99.0, 11.0]));
    }

    #[test]
    fn negate_point_discrete() {
        let a = Atom::eq(0, 5.0);
        let neg = a.negate(AttrType::Cat);
        assert_eq!(neg.len(), 2);
        assert!(neg[0].eval(&[4.0]));
        assert!(neg[1].eval(&[6.0]));
        assert!(!neg.iter().any(|n| n.eval(&[5.0])));
    }

    #[test]
    fn negate_half_line() {
        let a = Atom::new(0, Interval::at_most(3.0, false));
        let neg = a.negate(AttrType::Float);
        assert_eq!(neg.len(), 1);
        assert!(neg[0].eval(&[3.5]));
        assert!(!neg[0].eval(&[3.0]));
    }

    #[test]
    fn display_uses_names() {
        let schema = Schema::new(vec![("price", AttrType::Float)]);
        let a = Atom::between(0, 0.0, 149.99);
        assert_eq!(a.display(&schema).to_string(), "price ∈ [0, 149.99]");
    }
}
