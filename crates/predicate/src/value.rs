use std::fmt;

/// A single attribute value.
///
/// The bounding engine works on `f64` endpoints, so every value can be
/// *encoded* as an `f64` via [`Value::encode`]. Categorical values are
/// dictionary codes assigned by the storage layer; their encoding is the
/// code itself, which makes equality predicates degenerate (point)
/// intervals.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A 64-bit signed integer (also used for timestamps and dictionary
    /// codes surfaced to users).
    Int(i64),
    /// A 64-bit float. Must not be NaN; constructors in the storage layer
    /// enforce this.
    Float(f64),
    /// A dictionary-encoded categorical code.
    Cat(u32),
}

impl Value {
    /// Encode the value on the common `f64` number line used by intervals.
    ///
    /// `i64` values above 2^53 would lose precision; the storage layer
    /// rejects such extremes at ingest, so within the library the encoding
    /// is exact.
    #[inline]
    pub fn encode(&self) -> f64 {
        match *self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
            Value::Cat(v) => f64::from(v),
        }
    }

    /// True if this value is an integer-like (discrete) value.
    #[inline]
    pub fn is_discrete(&self) -> bool {
        matches!(self, Value::Int(_) | Value::Cat(_))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Cat(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Cat(v) => write!(f, "#{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_roundtrips_ints() {
        assert_eq!(Value::Int(42).encode(), 42.0);
        assert_eq!(Value::Int(-7).encode(), -7.0);
        assert_eq!(Value::Cat(3).encode(), 3.0);
        assert_eq!(Value::Float(1.5).encode(), 1.5);
    }

    #[test]
    fn discreteness() {
        assert!(Value::Int(1).is_discrete());
        assert!(Value::Cat(1).is_discrete());
        assert!(!Value::Float(1.0).is_discrete());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Int(5).to_string(), "5");
        assert_eq!(Value::Cat(5).to_string(), "#5");
    }
}
