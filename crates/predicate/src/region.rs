use crate::{Atom, AttrType, Interval, Predicate, Schema};
use std::fmt;

/// An axis-aligned box over a schema: one interval per attribute.
///
/// Regions are the geometric form of conjunctive predicates and the state
/// carried through cell-decomposition DFS. All operations are width-aligned
/// with a schema; the region stores the attribute types so emptiness is
/// type-exact without re-threading the schema everywhere.
#[derive(Debug, Clone, PartialEq)]
pub struct Region {
    intervals: Vec<Interval>,
    types: Vec<AttrType>,
}

impl Region {
    /// The full domain of a schema.
    pub fn full(schema: &Schema) -> Self {
        Region {
            intervals: vec![Interval::FULL; schema.width()],
            types: (0..schema.width()).map(|i| schema.attr_type(i)).collect(),
        }
    }

    /// Build from a predicate.
    pub fn from_predicate(pred: &Predicate, schema: &Schema) -> Self {
        pred.to_region(schema)
    }

    /// Number of attributes.
    pub fn width(&self) -> usize {
        self.intervals.len()
    }

    /// The interval on attribute `attr`.
    #[inline]
    pub fn interval(&self, attr: usize) -> &Interval {
        &self.intervals[attr]
    }

    /// The attribute type recorded for `attr`.
    #[inline]
    pub fn attr_type(&self, attr: usize) -> AttrType {
        self.types[attr]
    }

    /// Replace the interval on `attr` (used by tests and PC generators).
    pub fn set_interval(&mut self, attr: usize, iv: Interval) {
        self.intervals[attr] = iv;
    }

    /// Narrow by one atom.
    pub fn intersect_atom(&mut self, atom: &Atom) {
        self.intervals[atom.attr] = self.intervals[atom.attr].intersect(&atom.interval);
    }

    /// Narrow by a set of atoms, materializing a new region only if some
    /// atom actually tightens an interval. `None` means every atom was
    /// already implied (`self ∩ atoms = self`), so callers can keep using
    /// `self` — the allocation-avoidance backbone of the decomposition DFS,
    /// where most branch atoms repeat intervals the prefix already fixed.
    pub fn tightened_by<'a>(&self, atoms: impl IntoIterator<Item = &'a Atom>) -> Option<Region> {
        let mut out: Option<Region> = None;
        for atom in atoms {
            let cur = out
                .as_ref()
                .map_or_else(|| self.interval(atom.attr), |r| r.interval(atom.attr));
            let narrowed = cur.intersect(&atom.interval);
            if narrowed != *cur {
                out.get_or_insert_with(|| self.clone())
                    .set_interval(atom.attr, narrowed);
            }
        }
        out
    }

    /// Narrow by another region (pointwise interval intersection).
    pub fn intersect(&mut self, other: &Region) {
        debug_assert_eq!(self.width(), other.width());
        for (mine, theirs) in self.intervals.iter_mut().zip(&other.intervals) {
            *mine = mine.intersect(theirs);
        }
    }

    /// The intersection as a new region.
    pub fn intersected(&self, other: &Region) -> Region {
        let mut out = self.clone();
        out.intersect(other);
        out
    }

    /// True if any attribute's interval is empty for its type.
    pub fn is_empty(&self) -> bool {
        self.intervals
            .iter()
            .zip(&self.types)
            .any(|(iv, ty)| iv.is_empty(*ty))
    }

    /// Membership test for an encoded row.
    pub fn contains_row(&self, row: &[f64]) -> bool {
        debug_assert_eq!(row.len(), self.width());
        self.intervals
            .iter()
            .zip(row)
            .all(|(iv, v)| iv.contains(*v))
    }

    /// True if `self ⊇ other`, i.e. every point of `other` lies in `self`.
    /// For boxes this is per-attribute interval containment.
    pub fn contains_region(&self, other: &Region) -> bool {
        if other.is_empty() {
            return true;
        }
        self.intervals
            .iter()
            .zip(&other.intervals)
            .zip(&self.types)
            .all(|((a, b), ty)| a.contains_interval(b, *ty))
    }

    /// True if the boxes share at least one point.
    pub fn overlaps(&self, other: &Region) -> bool {
        !self.intersected(other).is_empty()
    }

    /// A representative point of the region, if non-empty. Serves as a
    /// satisfiability witness in tests.
    pub fn pick_witness(&self) -> Option<Vec<f64>> {
        let mut row = Vec::with_capacity(self.width());
        for (iv, ty) in self.intervals.iter().zip(&self.types) {
            row.push(iv.pick(*ty)?);
        }
        Some(row)
    }

    /// Human-readable form using schema names.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Region, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{{")?;
                let mut first = true;
                for (i, iv) in self.0.intervals.iter().enumerate() {
                    if *iv == Interval::FULL {
                        continue;
                    }
                    if !first {
                        write!(f, ", ")?;
                    }
                    first = false;
                    write!(f, "{}: {}", self.1.attr_name(i), iv)?;
                }
                write!(f, "}}")
            }
        }
        D(self, schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(vec![
            ("t", AttrType::Int),
            ("branch", AttrType::Cat),
            ("price", AttrType::Float),
        ])
    }

    #[test]
    fn full_region_contains_everything() {
        let r = Region::full(&schema());
        assert!(r.contains_row(&[1e9, 42.0, -5.5]));
        assert!(!r.is_empty());
    }

    #[test]
    fn intersect_atoms_narrows() {
        let s = schema();
        let mut r = Region::full(&s);
        r.intersect_atom(&Atom::bucket(0, 0.0, 10.0));
        r.intersect_atom(&Atom::eq(1, 3.0));
        assert!(r.contains_row(&[5.0, 3.0, 0.0]));
        assert!(!r.contains_row(&[10.0, 3.0, 0.0]));
        assert!(!r.contains_row(&[5.0, 2.0, 0.0]));
    }

    #[test]
    fn empty_when_discrete_gap() {
        let s = schema();
        let mut r = Region::full(&s);
        // branch in (2, 3) over a categorical domain: no code fits
        r.intersect_atom(&Atom::new(1, Interval::open(2.0, 3.0)));
        assert!(r.is_empty());
    }

    #[test]
    fn containment_and_overlap() {
        let s = schema();
        let mut big = Region::full(&s);
        big.intersect_atom(&Atom::between(2, 0.0, 100.0));
        let mut small = big.clone();
        small.intersect_atom(&Atom::between(2, 10.0, 20.0));
        assert!(big.contains_region(&small));
        assert!(!small.contains_region(&big));
        assert!(big.overlaps(&small));

        let mut disjoint = Region::full(&s);
        disjoint.intersect_atom(&Atom::between(2, 200.0, 300.0));
        assert!(!big.overlaps(&disjoint));
    }

    #[test]
    fn empty_region_contained_in_anything() {
        let s = schema();
        let mut empty = Region::full(&s);
        empty.intersect_atom(&Atom::between(2, 10.0, 0.0));
        assert!(empty.is_empty());
        let mut tiny = Region::full(&s);
        tiny.intersect_atom(&Atom::eq(1, 0.0));
        assert!(tiny.contains_region(&empty));
    }

    #[test]
    fn tightened_by_detects_no_ops() {
        let s = schema();
        let mut r = Region::full(&s);
        r.intersect_atom(&Atom::bucket(0, 0.0, 10.0));
        // an implied atom must not allocate a new region
        assert!(r.tightened_by(&[Atom::bucket(0, -5.0, 20.0)]).is_none());
        assert!(r.tightened_by(std::iter::empty()).is_none());
        // a genuinely narrowing atom must
        let t = r.tightened_by(&[Atom::bucket(0, 2.0, 5.0)]).unwrap();
        assert_eq!(*t.interval(0), Interval::half_open(2.0, 5.0));
        // and the original is untouched
        assert_eq!(*r.interval(0), Interval::half_open(0.0, 10.0));
    }

    #[test]
    fn witness_lies_inside() {
        let s = schema();
        let mut r = Region::full(&s);
        r.intersect_atom(&Atom::bucket(0, 5.0, 6.0));
        r.intersect_atom(&Atom::new(2, Interval::open(0.0, 1.0)));
        let w = r.pick_witness().unwrap();
        assert!(r.contains_row(&w));
    }

    #[test]
    fn witness_none_when_empty() {
        let s = schema();
        let mut r = Region::full(&s);
        r.intersect_atom(&Atom::new(1, Interval::open(2.0, 3.0)));
        assert_eq!(r.pick_witness(), None);
    }
}
