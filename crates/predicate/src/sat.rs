//! Exact satisfiability for decomposed cells.
//!
//! A cell produced by cell decomposition (§4.1 of the paper) has the shape
//! `base ∧ ¬ψ₁ ∧ … ∧ ¬ψₖ`, where `base` is the conjunction of the *included*
//! predicates (and the query pushdown predicate, Optimization 1) and the
//! `ψⱼ` are the *excluded* predicates. Geometrically this asks whether the
//! box `base` minus the union of boxes `ψⱼ` is non-empty.
//!
//! The paper uses Z3 for this test. Because predicates are restricted to
//! conjunctions of ranges, the problem is decidable by a small DPLL-style
//! search: if some `ψⱼ` covers `base`, the cell is empty; otherwise pick a
//! `ψⱼ` and branch on which of its atoms a witness violates, shrinking
//! `base` by the atom's complement. The search is exact (no approximation)
//! and produces a concrete witness row on success.
//!
//! # Parallel search
//!
//! The branch step is a disjunction: a witness avoiding the picked `ψ`
//! must violate at least one of its atoms, and the per-atom subproblems
//! are independent. [`find_witness_with`] runs them as stealable tasks on
//! the work-stealing pool whenever the search is still *wide* (more than
//! [`PAR_WITNESS_CUTOFF`] live exclusions — subtree size is exponential in
//! that count, so narrow searches stay inline). The first task to find a
//! witness wins: a shared stop flag cancels the remaining subtrees, which
//! only ever skips work that would have produced a *different equally
//! valid* witness. Satisfiability verdicts are identical to the
//! sequential search; the witness row itself may differ between runs
//! (both are genuine points of the cell).
//!
//! # Branch ordering
//!
//! The branch disjuncts are tried **largest surviving volume first**: a
//! complement atom that keeps most of `base`'s width on its attribute is
//! the likeliest to still hold a witness, so trying it first ends a SAT
//! search sooner (the Atreides-style most-promising-first rule, applied
//! with pure interval arithmetic — no catalog statistics needed at this
//! level). The verdict is order-independent — on failure every branch is
//! still tried — so only the identity of the returned witness can shift,
//! which the parallel-search contract above already allows.
//!
//! # Budgets
//!
//! [`find_witness_budgeted`] is the cooperative-cancellation entry: it
//! charges the probe against a [`QueryBudget`] and re-checks the
//! budget's passive limits (deadline / cancel) at every recursion and
//! after every sequential branch — the same places the first-hit-wins
//! stop flag is consulted — so a tripped search unwinds within one
//! branch granule. A tripped probe reports [`SatOutcome::Tripped`],
//! **never** `Unsat`: the search was abandoned, not refuted, and
//! callers must treat the cell as possibly satisfiable (the
//! EarlyStop-style sound widening).

use crate::{Interval, Predicate, Region};
use pc_budget::QueryBudget;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Tri-state verdict of a budgeted satisfiability probe.
#[derive(Debug, Clone, PartialEq)]
pub enum SatOutcome {
    /// A genuine witness row of the cell.
    Sat(Vec<f64>),
    /// Exactly refuted: no point of the cell exists.
    Unsat,
    /// The budget tripped before the search finished. The cell **may**
    /// be satisfiable — treating it as empty would be unsound.
    Tripped,
}

impl SatOutcome {
    /// The witness, if the probe proved satisfiability.
    pub fn witness(self) -> Option<Vec<f64>> {
        match self {
            SatOutcome::Sat(w) => Some(w),
            _ => None,
        }
    }
}

/// Minimum number of live (overlapping, non-covering) exclusions for the
/// branch disjuncts to fork as pool tasks. The remaining subtree is at
/// worst exponential in the live count, so above this the tasks amortize
/// their deque pushes; below it the whole search is a handful of interval
/// intersections and stays inline.
pub const PAR_WITNESS_CUTOFF: usize = 6;

/// Decide whether `base ∧ ¬ψ₁ ∧ … ∧ ¬ψₖ` is satisfiable, returning a
/// witness row (one encoded `f64` per attribute) if so.
///
/// `negs` are the excluded predicates. An excluded tautology makes every
/// cell empty (`¬TRUE` is unsatisfiable), which falls out naturally since
/// the tautology's box covers everything.
///
/// Strictly sequential; see [`find_witness_with`] for the parallel
/// driver.
pub fn find_witness(base: &Region, negs: &[&Predicate]) -> Option<Vec<f64>> {
    #[cfg(feature = "fault")]
    pc_budget::fault::point("sat::probe");
    search(base, negs, false, None, &QueryBudget::unlimited())
}

/// [`find_witness`] with an explicit parallelism opt-in: when `parallel`
/// is true and the global pool has more than one worker, wide branch
/// disjunctions fork as first-hit-wins stealable tasks (see the module
/// docs). The satisfiability verdict is identical either way; only the
/// identity of the returned witness may vary.
pub fn find_witness_with(base: &Region, negs: &[&Predicate], parallel: bool) -> Option<Vec<f64>> {
    #[cfg(feature = "fault")]
    pc_budget::fault::point("sat::probe");
    let parallel = parallel && rayon::current_num_threads() > 1;
    search(base, negs, parallel, None, &QueryBudget::unlimited())
}

/// [`find_witness_with`] under a [`QueryBudget`]: charges one SAT probe,
/// re-checks the passive limits at every recursion, and reports the
/// tri-state [`SatOutcome`] — `Tripped` when the budget ran out before
/// the search could conclude (see the module docs; never read `Tripped`
/// as `Unsat`).
pub fn find_witness_budgeted(
    base: &Region,
    negs: &[&Predicate],
    parallel: bool,
    budget: &QueryBudget,
) -> SatOutcome {
    #[cfg(feature = "fault")]
    pc_budget::fault::point("sat::probe");
    if !budget.charge_sat() {
        return SatOutcome::Tripped;
    }
    let parallel = parallel && rayon::current_num_threads() > 1;
    match search(base, negs, parallel, None, budget) {
        Some(w) => SatOutcome::Sat(w),
        // A `None` under a tripped budget is an abandoned search, not a
        // refutation (the trip may have landed after a genuine UNSAT
        // concluded — reporting `Tripped` for it is sound, merely
        // looser).
        None if budget.is_tripped() => SatOutcome::Tripped,
        None => SatOutcome::Unsat,
    }
}

/// The DPLL-style search. `stop` is the shared first-hit-wins
/// cancellation flag of an enclosing parallel fan-out: once set, every
/// search under that fan-out may return `None` *as a cancellation* — the
/// fan-out that set it has already recorded a genuine witness, and
/// cancelled results are discarded, never interpreted as UNSAT. A
/// tripped `budget` aborts the same way; the budgeted public entry
/// re-reads the budget to tell the two `None`s apart.
fn search(
    base: &Region,
    negs: &[&Predicate],
    parallel: bool,
    stop: Option<&AtomicBool>,
    budget: &QueryBudget,
) -> Option<Vec<f64>> {
    if stop.is_some_and(|f| f.load(Ordering::Relaxed)) {
        return None;
    }
    if !budget.proceed() {
        return None;
    }
    if base.is_empty() {
        return None;
    }
    // Keep only excluded predicates whose box intersects `base`; a disjoint
    // exclusion is vacuously satisfied. If any exclusion covers `base`
    // entirely, no witness can exist. Both facts are decided per-atom on
    // interval intersections without materializing `base ∩ ψ`.
    let mut live: Vec<&Predicate> = Vec::with_capacity(negs.len());
    for p in negs {
        let mut disjoint = false;
        let mut unchanged = true;
        let atoms = p.atoms();
        for (i, atom) in atoms.iter().enumerate() {
            // Fold earlier atoms on the same attribute into the current
            // interval so conjunctions like `x ∈ [0,3] ∧ x ∈ [5,8]` are
            // recognized as empty (cumulative emptiness), exactly like the
            // old materialized `base ∩ ψ` test. Predicates have a handful
            // of atoms, so the inner scan is cheaper than a region clone.
            let mut cur = *base.interval(atom.attr);
            for prev in &atoms[..i] {
                if prev.attr == atom.attr {
                    cur = cur.intersect(&prev.interval);
                }
            }
            let narrowed = cur.intersect(&atom.interval);
            if narrowed.is_empty(base.attr_type(atom.attr)) {
                // ψ can't capture any point of base
                disjoint = true;
                break;
            }
            if narrowed != cur {
                unchanged = false;
            }
        }
        if disjoint {
            continue;
        }
        if unchanged || covers(p, base) {
            return None;
        }
        live.push(p);
    }
    if live.is_empty() {
        return base.pick_witness();
    }
    // Branch on the exclusion with the fewest atoms: fewest subproblems.
    let (pick_idx, pick) = live
        .iter()
        .enumerate()
        .min_by_key(|(_, p)| p.atoms().len())
        .map(|(i, p)| (i, *p))
        .expect("live is non-empty");
    let rest: Vec<&Predicate> = live
        .iter()
        .enumerate()
        .filter_map(|(i, p)| (i != pick_idx).then_some(*p))
        .collect();

    // A witness avoiding ψ must violate at least one of its atoms — the
    // branch disjunction, tried largest-surviving-volume first (module
    // docs, "Branch ordering"). Wide parallel searches materialize the
    // branch boxes up front and fan them out as tasks.
    let branches = ordered_branches(base, pick);
    if parallel && live.len() > PAR_WITNESS_CUTOFF && branches.len() > 1 {
        let branches = branches
            .into_iter()
            .map(|b| {
                b.map(|(attr, narrowed)| {
                    let mut shrunk = base.clone();
                    shrunk.set_interval(attr, narrowed);
                    shrunk
                })
            })
            .collect();
        return fan_out(base, &rest, branches, stop, budget);
    }

    // Sequential branch loop: clone the base box lazily, only for the
    // branches actually reached — the first witness stops the scan.
    for branch in branches {
        let found = match branch {
            Some((attr, narrowed)) => {
                let mut shrunk = base.clone();
                shrunk.set_interval(attr, narrowed);
                search(&shrunk, &rest, parallel, stop, budget)
            }
            None => search(base, &rest, parallel, stop, budget),
        };
        if found.is_some() {
            return found;
        }
        if stop.is_some_and(|f| f.load(Ordering::Relaxed)) || !budget.proceed() {
            return None;
        }
    }
    None
}

/// Enumerate the branch disjuncts of the picked exclusion against `base`,
/// **largest surviving-width fraction first**. Each entry is
/// `Some((attr, narrowed))` — recurse with `attr` shrunk to `narrowed` —
/// or `None`, the single deduplicated non-narrowing branch that recurses
/// on `base` unchanged (every such complement atom reduces to the
/// identical subproblem, so it appears at most once, with fraction 1.0).
/// Complement atoms whose intersection with `base` is empty are dropped
/// here. Only `Interval` copies are staged — region clones stay
/// one-per-branch-taken in the callers.
fn ordered_branches(base: &Region, pick: &Predicate) -> Vec<Option<(usize, Interval)>> {
    let mut scored: Vec<(f64, Option<(usize, Interval)>)> = Vec::new();
    let mut unchanged_pushed = false;
    for atom in pick.atoms() {
        let ty = base.attr_type(atom.attr);
        for neg_atom in atom.negate(ty) {
            let cur = base.interval(neg_atom.attr);
            let narrowed = cur.intersect(&neg_atom.interval);
            if narrowed.is_empty(ty) {
                continue;
            }
            if narrowed == *cur {
                if !unchanged_pushed {
                    unchanged_pushed = true;
                    scored.push((1.0, None));
                }
            } else {
                let frac = surviving_fraction(&narrowed, cur);
                scored.push((frac, Some((neg_atom.attr, narrowed))));
            }
        }
    }
    // Stable sort: equal fractions keep declaration order, so the
    // ordering is deterministic and degenerates to the historical order
    // on unscorable (unbounded) axes.
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
    scored.into_iter().map(|(_, b)| b).collect()
}

/// Fraction of `cur`'s width that `narrowed` keeps, in `[0, 1]`. An
/// unbounded `cur` gives no scale: an unbounded survivor keeps
/// "everything" (1.0), a finite one is pessimistically half (0.5) — the
/// same convention as pc-core's estimate layer.
fn surviving_fraction(narrowed: &Interval, cur: &Interval) -> f64 {
    let cur_w = cur.hi - cur.lo;
    if !cur_w.is_finite() || cur_w <= 0.0 {
        let nw = narrowed.hi - narrowed.lo;
        return if nw.is_finite() { 0.5 } else { 1.0 };
    }
    ((narrowed.hi - narrowed.lo) / cur_w).clamp(0.0, 1.0)
}

/// Run the branch disjuncts as first-hit-wins stealable tasks. Any task
/// that finds a witness sets the (shared) stop flag — cancelling every
/// other subtree under the same root — and the first such witness *at
/// this level* is the result. A level whose tasks were all cancelled
/// returns `None`, which its own parent fan-out discards: the witness
/// that caused the cancellation propagates up the chain of the task that
/// found it.
fn fan_out(
    base: &Region,
    rest: &[&Predicate],
    branches: Vec<Option<Region>>,
    stop: Option<&AtomicBool>,
    budget: &QueryBudget,
) -> Option<Vec<f64>> {
    let local_stop = AtomicBool::new(false);
    let stop = stop.unwrap_or(&local_stop);
    let result: Mutex<Option<Vec<f64>>> = Mutex::new(None);
    rayon::scope(|s| {
        for branch in branches {
            let result = &result;
            s.spawn(move |_| {
                if stop.load(Ordering::Relaxed) || !budget.proceed() {
                    return;
                }
                let found = match &branch {
                    Some(shrunk) => search(shrunk, rest, true, Some(stop), budget),
                    None => search(base, rest, true, Some(stop), budget),
                };
                if let Some(w) = found {
                    stop.store(true, Ordering::Relaxed);
                    let mut slot = result.lock().unwrap();
                    if slot.is_none() {
                        *slot = Some(w);
                    }
                }
            });
        }
    });
    result.into_inner().unwrap()
}

/// Decide satisfiability without materializing the witness.
pub fn is_sat(base: &Region, negs: &[&Predicate]) -> bool {
    find_witness(base, negs).is_some()
}

/// [`is_sat`] with the parallel-search opt-in of [`find_witness_with`].
pub fn is_sat_with(base: &Region, negs: &[&Predicate], parallel: bool) -> bool {
    find_witness_with(base, negs, parallel).is_some()
}

/// True if predicate `p`'s box contains all of `base`.
fn covers(p: &Predicate, base: &Region) -> bool {
    p.atoms().iter().all(|atom| {
        let ty = base.attr_type(atom.attr);
        atom.interval
            .contains_interval(base.interval(atom.attr), ty)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Atom, AttrType, Interval, Schema};

    fn schema() -> Schema {
        Schema::new(vec![("x", AttrType::Float), ("y", AttrType::Float)])
    }

    fn boxp(x0: f64, x1: f64, y0: f64, y1: f64) -> Predicate {
        Predicate::always()
            .and(Atom::between(0, x0, x1))
            .and(Atom::between(1, y0, y1))
    }

    #[test]
    fn self_contradictory_exclusion_is_dropped_without_search() {
        // two atoms on the same attribute with an empty conjunction: the
        // exclusion can capture nothing and must not spawn branch work
        let s = schema();
        let base = boxp(0.0, 10.0, 0.0, 10.0).to_region(&s);
        let contradictory = Predicate::always()
            .and(Atom::between(0, 0.0, 3.0))
            .and(Atom::between(0, 5.0, 8.0));
        let w = find_witness(&base, &[&contradictory]).unwrap();
        assert!(base.contains_row(&w));
    }

    #[test]
    fn no_exclusions_sat() {
        let s = schema();
        let base = boxp(0.0, 1.0, 0.0, 1.0).to_region(&s);
        let w = find_witness(&base, &[]).unwrap();
        assert!(base.contains_row(&w));
    }

    #[test]
    fn covered_base_unsat() {
        let s = schema();
        let base = boxp(0.0, 1.0, 0.0, 1.0).to_region(&s);
        let cover = boxp(-1.0, 2.0, -1.0, 2.0);
        assert!(!is_sat(&base, &[&cover]));
    }

    #[test]
    fn negated_tautology_unsat() {
        let s = schema();
        let base = Region::full(&s);
        let taut = Predicate::always();
        assert!(!is_sat(&base, &[&taut]));
    }

    #[test]
    fn disjoint_exclusion_ignored() {
        let s = schema();
        let base = boxp(0.0, 1.0, 0.0, 1.0).to_region(&s);
        let far = boxp(10.0, 11.0, 10.0, 11.0);
        let w = find_witness(&base, &[&far]).unwrap();
        assert!(base.contains_row(&w));
    }

    #[test]
    fn partial_overlap_sat_with_witness_outside_exclusion() {
        let s = schema();
        let base = boxp(0.0, 10.0, 0.0, 10.0).to_region(&s);
        let cut = boxp(0.0, 5.0, 0.0, 10.0);
        let w = find_witness(&base, &[&cut]).unwrap();
        assert!(base.contains_row(&w));
        assert!(!cut.eval(&w));
    }

    #[test]
    fn union_of_two_halves_covers() {
        // two exclusions that jointly (but not individually) cover base
        let s = schema();
        let base = boxp(0.0, 10.0, 0.0, 10.0).to_region(&s);
        let left = boxp(-1.0, 5.0, -1.0, 11.0);
        let right = boxp(5.0, 11.0, -1.0, 11.0);
        assert!(!is_sat(&base, &[&left, &right]));
    }

    #[test]
    fn union_with_gap_sat() {
        let s = schema();
        let base = boxp(0.0, 10.0, 0.0, 10.0).to_region(&s);
        let left = boxp(-1.0, 4.0, -1.0, 11.0);
        let right = boxp(6.0, 11.0, -1.0, 11.0);
        let w = find_witness(&base, &[&left, &right]).unwrap();
        assert!(base.contains_row(&w));
        assert!(!left.eval(&w) && !right.eval(&w));
        assert!(w[0] > 4.0 && w[0] < 6.0);
    }

    #[test]
    fn cross_covering_quadrants() {
        // four quadrant boxes cover the unit square only jointly
        let s = schema();
        let base = boxp(0.0, 1.0, 0.0, 1.0).to_region(&s);
        let q1 = boxp(0.0, 0.5, 0.0, 0.5);
        let q2 = boxp(0.5, 1.0, 0.0, 0.5);
        let q3 = boxp(0.0, 0.5, 0.5, 1.0);
        let q4 = boxp(0.5, 1.0, 0.5, 1.0);
        assert!(!is_sat(&base, &[&q1, &q2, &q3, &q4]));
        // leave a pinhole: shrink q4 so (0.75, 0.75) escapes through the
        // open corner
        let q4_small = Predicate::always()
            .and(Atom::new(0, Interval::closed(0.5, 0.7)))
            .and(Atom::new(1, Interval::closed(0.5, 1.0)));
        let w = find_witness(&base, &[&q1, &q2, &q3, &q4_small]).unwrap();
        assert!(base.contains_row(&w));
        for q in [&q1, &q2, &q3, &q4_small] {
            assert!(!q.eval(&w));
        }
    }

    #[test]
    fn discrete_domain_exact_cover() {
        // base: cat ∈ [0, 2]; exclusions cat=0, cat=1, cat=2 cover exactly
        let s = Schema::new(vec![("c", AttrType::Cat)]);
        let mut base = Region::full(&s);
        base.intersect_atom(&Atom::between(0, 0.0, 2.0));
        let e0 = Predicate::atom(Atom::eq(0, 0.0));
        let e1 = Predicate::atom(Atom::eq(0, 1.0));
        let e2 = Predicate::atom(Atom::eq(0, 2.0));
        assert!(!is_sat(&base, &[&e0, &e1, &e2]));
        assert!(is_sat(&base, &[&e0, &e2]));
        let w = find_witness(&base, &[&e0, &e2]).unwrap();
        assert_eq!(w[0], 1.0);
    }

    #[test]
    fn budgeted_probe_matches_exact_when_unlimited() {
        let s = schema();
        let base = boxp(0.0, 10.0, 0.0, 10.0).to_region(&s);
        let left = boxp(-1.0, 5.0, -1.0, 11.0);
        let right = boxp(5.0, 11.0, -1.0, 11.0);
        let gap_right = boxp(6.0, 11.0, -1.0, 11.0);
        let b = QueryBudget::unlimited();
        assert_eq!(
            find_witness_budgeted(&base, &[&left, &right], false, &b),
            SatOutcome::Unsat
        );
        match find_witness_budgeted(&base, &[&left, &gap_right], false, &b) {
            SatOutcome::Sat(w) => assert!(base.contains_row(&w)),
            other => panic!("expected Sat, got {other:?}"),
        }
    }

    #[test]
    fn exhausted_budget_reports_tripped_not_unsat() {
        let s = schema();
        let base = boxp(0.0, 10.0, 0.0, 10.0).to_region(&s);
        let left = boxp(-1.0, 5.0, -1.0, 11.0);
        let right = boxp(5.0, 11.0, -1.0, 11.0);
        // cap 0: the very first charge trips — even though the cell is
        // genuinely UNSAT, the abandoned probe must not claim so
        let b = QueryBudget::unlimited().with_sat_cap(0);
        assert_eq!(
            find_witness_budgeted(&base, &[&left, &right], false, &b),
            SatOutcome::Tripped
        );
        assert!(b.is_tripped());
    }

    #[test]
    fn cancelled_budget_aborts_mid_search() {
        let s = schema();
        let base = boxp(0.0, 10.0, 0.0, 10.0).to_region(&s);
        let left = boxp(-1.0, 5.0, -1.0, 11.0);
        let right = boxp(5.0, 11.0, -1.0, 11.0);
        let b = QueryBudget::armed();
        b.cancel_token().expect("armed").cancel();
        assert_eq!(
            find_witness_budgeted(&base, &[&left, &right], false, &b),
            SatOutcome::Tripped
        );
    }

    #[test]
    fn paper_example_three_cells() {
        // §4.4: t1 = Nov11 ≤ utc < Nov12, t2 = Nov11 ≤ utc < Nov13.
        // Cell t1 ∧ ¬t2 is unsatisfiable; the others are satisfiable.
        let s = Schema::new(vec![("utc", AttrType::Int), ("price", AttrType::Float)]);
        let t1 = Predicate::atom(Atom::bucket(0, 11.0, 12.0));
        let t2 = Predicate::atom(Atom::bucket(0, 11.0, 13.0));
        let full = Region::full(&s);

        // c1 = t1 ∧ t2
        let c1 = {
            let mut r = full.clone();
            for a in t1.atoms().iter().chain(t2.atoms()) {
                r.intersect_atom(a);
            }
            r
        };
        assert!(is_sat(&c1, &[]));

        // c2 = ¬t1 ∧ t2
        let c2 = {
            let mut r = full.clone();
            for a in t2.atoms() {
                r.intersect_atom(a);
            }
            r
        };
        assert!(is_sat(&c2, &[&t1]));

        // c3 = t1 ∧ ¬t2 : t2's box contains t1's box, so unsat
        let c3 = {
            let mut r = full.clone();
            for a in t1.atoms() {
                r.intersect_atom(a);
            }
            r
        };
        assert!(!is_sat(&c3, &[&t2]));
    }
}
