use crate::{Atom, Interval, Region, Schema};
use std::fmt;

/// A conjunction of range atoms — the predicate language of §3.1.
///
/// The empty conjunction is the tautology `TRUE` (as in the paper's `c2`
/// example, a constraint over all branches). Conjunctions over the same
/// attribute are allowed and intersect naturally when converted to a
/// [`Region`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Predicate {
    atoms: Vec<Atom>,
}

impl Predicate {
    /// The tautology `TRUE`.
    pub fn always() -> Self {
        Predicate { atoms: Vec::new() }
    }

    /// Build from atoms.
    pub fn new(atoms: Vec<Atom>) -> Self {
        Predicate { atoms }
    }

    /// Single-atom predicate.
    pub fn atom(atom: Atom) -> Self {
        Predicate { atoms: vec![atom] }
    }

    /// The constituent atoms.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// True if this is the tautology.
    pub fn is_always(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Conjoin another atom.
    pub fn and(mut self, atom: Atom) -> Self {
        self.atoms.push(atom);
        self
    }

    /// Conjoin all atoms of another predicate.
    pub fn and_pred(mut self, other: &Predicate) -> Self {
        self.atoms.extend_from_slice(&other.atoms);
        self
    }

    /// Evaluate against an encoded row.
    #[inline]
    pub fn eval(&self, row: &[f64]) -> bool {
        self.atoms.iter().all(|a| a.eval(row))
    }

    /// The axis-aligned box this conjunction describes.
    pub fn to_region(&self, schema: &Schema) -> Region {
        let mut region = Region::full(schema);
        for atom in &self.atoms {
            region.intersect_atom(atom);
        }
        region
    }

    /// The interval this predicate implies for `attr` (FULL if
    /// unconstrained).
    pub fn interval_for(&self, attr: usize) -> Interval {
        self.atoms
            .iter()
            .filter(|a| a.attr == attr)
            .fold(Interval::FULL, |acc, a| acc.intersect(&a.interval))
    }

    /// Human-readable form using schema names.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Predicate, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                if self.0.is_always() {
                    return write!(f, "TRUE");
                }
                for (i, a) in self.0.atoms.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{}", a.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, schema)
    }
}

impl From<Atom> for Predicate {
    fn from(a: Atom) -> Self {
        Predicate::atom(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrType;

    fn schema() -> Schema {
        Schema::new(vec![
            ("utc", AttrType::Int),
            ("branch", AttrType::Cat),
            ("price", AttrType::Float),
        ])
    }

    #[test]
    fn tautology_accepts_everything() {
        let p = Predicate::always();
        assert!(p.eval(&[1.0, 2.0, 3.0]));
        assert!(p.is_always());
    }

    #[test]
    fn conjunction_semantics() {
        let p = Predicate::always()
            .and(Atom::eq(1, 0.0))
            .and(Atom::between(2, 0.0, 149.99));
        assert!(p.eval(&[5.0, 0.0, 100.0]));
        assert!(!p.eval(&[5.0, 1.0, 100.0]));
        assert!(!p.eval(&[5.0, 0.0, 200.0]));
    }

    #[test]
    fn interval_for_intersects_repeated_attrs() {
        let p = Predicate::always()
            .and(Atom::between(2, 0.0, 100.0))
            .and(Atom::between(2, 50.0, 200.0));
        let iv = p.interval_for(2);
        assert_eq!((iv.lo, iv.hi), (50.0, 100.0));
        assert_eq!(p.interval_for(0), Interval::FULL);
    }

    #[test]
    fn to_region_matches_eval() {
        let s = schema();
        let p = Predicate::always()
            .and(Atom::bucket(0, 10.0, 20.0))
            .and(Atom::eq(1, 2.0));
        let r = p.to_region(&s);
        assert!(r.contains_row(&[15.0, 2.0, 7.0]));
        assert!(!r.contains_row(&[20.0, 2.0, 7.0]));
        assert!(!r.contains_row(&[15.0, 3.0, 7.0]));
    }

    #[test]
    fn display_tautology() {
        let s = schema();
        assert_eq!(Predicate::always().display(&s).to_string(), "TRUE");
    }
}
