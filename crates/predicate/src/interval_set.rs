use crate::{AttrType, Interval};

/// A union of disjoint, sorted intervals over one attribute.
///
/// Used by PC generators to carve attribute domains into buckets and by the
/// histogram baseline; the cell SAT solver works on single intervals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IntervalSet {
    pieces: Vec<Interval>,
}

impl IntervalSet {
    /// The empty set.
    pub fn empty() -> Self {
        IntervalSet { pieces: Vec::new() }
    }

    /// The full line.
    pub fn full() -> Self {
        IntervalSet {
            pieces: vec![Interval::FULL],
        }
    }

    /// Build from arbitrary intervals, merging overlaps and dropping empty
    /// pieces (with respect to the given attribute type).
    pub fn from_intervals(ivs: impl IntoIterator<Item = Interval>, ty: AttrType) -> Self {
        let mut pieces: Vec<Interval> = ivs
            .into_iter()
            .map(|iv| iv.normalize(ty))
            .filter(|iv| !iv.is_empty(ty))
            .collect();
        pieces.sort_by(|a, b| {
            a.lo.partial_cmp(&b.lo)
                .expect("interval endpoints are never NaN")
                .then_with(|| b.lo_open.cmp(&a.lo_open))
        });
        let mut merged: Vec<Interval> = Vec::with_capacity(pieces.len());
        for iv in pieces.drain(..) {
            match merged.last_mut() {
                Some(last) if touches(last, &iv, ty) => {
                    if iv.hi > last.hi || (iv.hi == last.hi && !iv.hi_open) {
                        last.hi = iv.hi;
                        last.hi_open = iv.hi_open;
                    }
                }
                _ => merged.push(iv),
            }
        }
        IntervalSet { pieces: merged }
    }

    /// The disjoint pieces in ascending order.
    pub fn pieces(&self) -> &[Interval] {
        &self.pieces
    }

    /// True if no point belongs to the set.
    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, v: f64) -> bool {
        // pieces are sorted; linear scan is fine for the small sets we use.
        self.pieces.iter().any(|iv| iv.contains(v))
    }

    /// Intersect every piece with `iv`.
    pub fn intersect_interval(&self, iv: &Interval, ty: AttrType) -> IntervalSet {
        IntervalSet::from_intervals(self.pieces.iter().map(|p| p.intersect(iv)), ty)
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet, ty: AttrType) -> IntervalSet {
        IntervalSet::from_intervals(self.pieces.iter().chain(other.pieces.iter()).copied(), ty)
    }

    /// Subtract `iv` from the set.
    pub fn subtract_interval(&self, iv: &Interval, ty: AttrType) -> IntervalSet {
        let mut out = Vec::new();
        for p in &self.pieces {
            for c in iv.complement(ty) {
                let piece = p.intersect(&c);
                if !piece.is_empty(ty) {
                    out.push(piece);
                }
            }
            if iv.is_empty(ty) {
                out.push(*p);
            }
        }
        IntervalSet::from_intervals(out, ty)
    }
}

/// Whether two sorted-by-lo intervals overlap or are adjacent enough to
/// merge into one piece.
fn touches(a: &Interval, b: &Interval, ty: AttrType) -> bool {
    debug_assert!(a.lo <= b.lo);
    if b.lo < a.hi {
        return true;
    }
    if b.lo == a.hi {
        // [1,2] + [2,3] merge; [1,2) + (2,3] do not.
        return !(a.hi_open && b.lo_open);
    }
    // adjacent integers merge over discrete domains: [1,2] + [3,4] = [1,4]
    ty.is_discrete() && a.hi.is_finite() && b.lo.is_finite() && b.lo == a.hi + 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const F: AttrType = AttrType::Float;
    const I: AttrType = AttrType::Int;

    #[test]
    fn merges_overlapping() {
        let s = IntervalSet::from_intervals(
            vec![Interval::closed(0.0, 2.0), Interval::closed(1.0, 3.0)],
            F,
        );
        assert_eq!(s.pieces().len(), 1);
        assert_eq!(s.pieces()[0], Interval::closed(0.0, 3.0));
    }

    #[test]
    fn keeps_disjoint() {
        let s = IntervalSet::from_intervals(
            vec![Interval::closed(0.0, 1.0), Interval::closed(2.0, 3.0)],
            F,
        );
        assert_eq!(s.pieces().len(), 2);
        assert!(s.contains(0.5));
        assert!(!s.contains(1.5));
        assert!(s.contains(2.0));
    }

    #[test]
    fn adjacent_integers_merge() {
        let s = IntervalSet::from_intervals(
            vec![Interval::closed(1.0, 2.0), Interval::closed(3.0, 4.0)],
            I,
        );
        assert_eq!(s.pieces().len(), 1);
    }

    #[test]
    fn adjacent_floats_do_not_merge_when_open() {
        let s = IntervalSet::from_intervals(
            vec![Interval::half_open(0.0, 1.0), Interval::open(1.0, 2.0)],
            F,
        );
        assert_eq!(s.pieces().len(), 2);
        assert!(!s.contains(1.0));
    }

    #[test]
    fn half_open_chain_merges() {
        let s = IntervalSet::from_intervals(
            vec![Interval::half_open(0.0, 1.0), Interval::half_open(1.0, 2.0)],
            F,
        );
        assert_eq!(s.pieces().len(), 1);
        assert!(s.contains(1.0));
        assert!(!s.contains(2.0));
    }

    #[test]
    fn subtract_splits() {
        let s = IntervalSet::from_intervals(vec![Interval::closed(0.0, 10.0)], F)
            .subtract_interval(&Interval::closed(3.0, 4.0), F);
        assert_eq!(s.pieces().len(), 2);
        assert!(s.contains(2.9));
        assert!(!s.contains(3.0));
        assert!(!s.contains(4.0));
        assert!(s.contains(4.1));
    }

    #[test]
    fn subtract_empty_is_noop() {
        let orig = IntervalSet::from_intervals(vec![Interval::closed(0.0, 1.0)], F);
        let s = orig.subtract_interval(&Interval::EMPTY, F);
        assert_eq!(s, orig);
    }

    #[test]
    fn union_and_intersect() {
        let a = IntervalSet::from_intervals(vec![Interval::closed(0.0, 2.0)], F);
        let b = IntervalSet::from_intervals(vec![Interval::closed(5.0, 7.0)], F);
        let u = a.union(&b, F);
        assert_eq!(u.pieces().len(), 2);
        let i = u.intersect_interval(&Interval::closed(1.0, 6.0), F);
        assert_eq!(i.pieces().len(), 2);
        assert!(i.contains(1.5));
        assert!(i.contains(5.5));
        assert!(!i.contains(3.0));
    }
}
