use std::fmt;

/// The logical type of an attribute.
///
/// Discreteness matters for interval algebra: the open interval `(1, 2)`
/// is empty over the integers but not over the reals, and the complement
/// of `x = 5` over a discrete domain is `x ≤ 4 ∨ x ≥ 6` with *closed*
/// endpoints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrType {
    /// 64-bit integers (timestamps, counts, ids).
    Int,
    /// 64-bit floats (measurements, prices).
    Float,
    /// Dictionary-encoded categoricals; behave like non-negative integers.
    Cat,
}

impl AttrType {
    /// True for types whose domain is a discrete integer grid.
    #[inline]
    pub fn is_discrete(self) -> bool {
        !matches!(self, AttrType::Float)
    }
}

/// An ordered list of named, typed attributes.
///
/// Attribute identity throughout the library is the positional index into
/// the schema; names exist for display and for resolving user queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    names: Vec<String>,
    types: Vec<AttrType>,
}

impl Schema {
    /// Build a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics if two attributes share a name, since later name lookups
    /// would be ambiguous.
    pub fn new<S: Into<String>>(attrs: Vec<(S, AttrType)>) -> Self {
        let mut names = Vec::with_capacity(attrs.len());
        let mut types = Vec::with_capacity(attrs.len());
        for (name, ty) in attrs {
            let name = name.into();
            assert!(
                !names.contains(&name),
                "duplicate attribute name `{name}` in schema"
            );
            names.push(name);
            types.push(ty);
        }
        Schema { names, types }
    }

    /// Number of attributes.
    #[inline]
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// The type of attribute `idx`.
    #[inline]
    pub fn attr_type(&self, idx: usize) -> AttrType {
        self.types[idx]
    }

    /// The name of attribute `idx`.
    #[inline]
    pub fn attr_name(&self, idx: usize) -> &str {
        &self.names[idx]
    }

    /// Resolve an attribute name to its index.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// Resolve an attribute name, panicking with a helpful message if it
    /// does not exist. Intended for test and example code.
    pub fn expect_index(&self, name: &str) -> usize {
        self.index_of(name)
            .unwrap_or_else(|| panic!("no attribute named `{name}` in schema {self}"))
    }

    /// Iterate over `(index, name, type)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &str, AttrType)> + '_ {
        self.names
            .iter()
            .zip(self.types.iter())
            .enumerate()
            .map(|(i, (n, t))| (i, n.as_str(), *t))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (name, ty)) in self.names.iter().zip(&self.types).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}: {ty:?}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            ("utc", AttrType::Int),
            ("branch", AttrType::Cat),
            ("price", AttrType::Float),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.width(), 3);
        assert_eq!(s.index_of("price"), Some(2));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.attr_name(1), "branch");
        assert_eq!(s.attr_type(0), AttrType::Int);
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn duplicate_names_rejected() {
        Schema::new(vec![("a", AttrType::Int), ("a", AttrType::Float)]);
    }

    #[test]
    fn discreteness_by_type() {
        assert!(AttrType::Int.is_discrete());
        assert!(AttrType::Cat.is_discrete());
        assert!(!AttrType::Float.is_discrete());
    }

    #[test]
    fn iter_yields_all() {
        let s = sample();
        let got: Vec<_> = s.iter().map(|(i, n, _)| (i, n.to_string())).collect();
        assert_eq!(
            got,
            vec![
                (0, "utc".to_string()),
                (1, "branch".to_string()),
                (2, "price".to_string())
            ]
        );
    }
}
