//! Typed predicate language, region algebra, and an exact cell
//! satisfiability solver for the Predicate-Constraint framework.
//!
//! The paper ("Fast and Reliable Missing Data Contingency Analysis with
//! Predicate-Constraints", SIGMOD 2020) restricts predicates to
//! *conjunctions of ranges and inequalities* over the attributes of a
//! relation (§3.1). That restriction is what makes satisfiability of
//! decomposed cells decidable without a general SMT solver: a predicate is
//! an axis-aligned box, and a cell is a box minus a union of boxes.
//!
//! This crate provides:
//!
//! * [`Value`], [`AttrType`], and [`Schema`] — the typed data model shared
//!   by the storage engine and the bounding engine.
//! * [`Interval`] and [`IntervalSet`] — one-dimensional range algebra with
//!   open/closed endpoints and type-aware (discrete vs. continuous)
//!   emptiness and complement.
//! * [`Atom`] and [`Predicate`] — conjunctive range predicates.
//! * [`Region`] — an axis-aligned box over a schema, the geometric form of
//!   a predicate.
//! * [`sat`] — the exact satisfiability routine for `base ∧ ¬ψ₁ ∧ … ∧ ¬ψₖ`
//!   used by cell decomposition. This is the component that replaces Z3 in
//!   the paper's implementation.

#![warn(missing_docs)]

mod atom;
mod interval;
mod interval_set;
mod predicate;
mod region;
pub mod sat;
mod schema;
pub mod text;
mod value;

pub use atom::Atom;
pub use interval::Interval;
pub use interval_set::IntervalSet;
pub use predicate::Predicate;
pub use region::Region;
pub use schema::{AttrType, Schema};
pub use value::Value;
