//! Property-based tests for the interval algebra and the cell SAT solver.
//!
//! The SAT solver is verified against a brute-force rasterization oracle:
//! over a small discrete grid, `base ∧ ¬ψ₁ ∧ … ∧ ¬ψₖ` is satisfiable iff
//! some grid point of `base` avoids every `ψⱼ`. On discrete (Int) domains
//! the grid enumeration is exhaustive, so the oracle is exact.

use pc_predicate::{sat, Atom, AttrType, Interval, IntervalSet, Predicate, Region, Schema};
use proptest::prelude::*;

const GRID: i64 = 8;

fn int_schema(width: usize) -> Schema {
    Schema::new(
        (0..width)
            .map(|i| (format!("a{i}"), AttrType::Int))
            .collect(),
    )
}

prop_compose! {
    /// A random sub-interval of [0, GRID] with random endpoint openness.
    fn arb_interval()(a in 0..=GRID, b in 0..=GRID, lo_open: bool, hi_open: bool) -> Interval {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        Interval::new(lo as f64, lo_open, hi as f64, hi_open)
    }
}

prop_compose! {
    fn arb_predicate(width: usize)(
        atoms in prop::collection::vec((0..width, arb_interval()), 0..3)
    ) -> Predicate {
        Predicate::new(atoms.into_iter().map(|(attr, iv)| Atom::new(attr, iv)).collect())
    }
}

/// Exhaustive oracle over the integer grid [0, GRID]^width.
fn oracle_sat(base: &Region, negs: &[&Predicate], width: usize) -> bool {
    let mut idx = vec![0i64; width];
    loop {
        let row: Vec<f64> = idx.iter().map(|v| *v as f64).collect();
        if base.contains_row(&row) && negs.iter().all(|p| !p.eval(&row)) {
            return true;
        }
        // odometer increment
        let mut k = 0;
        loop {
            if k == width {
                return false;
            }
            idx[k] += 1;
            if idx[k] <= GRID {
                break;
            }
            idx[k] = 0;
            k += 1;
        }
    }
}

proptest! {
    #[test]
    fn sat_matches_grid_oracle(
        base_pred in arb_predicate(2),
        negs in prop::collection::vec(arb_predicate(2), 0..4)
    ) {
        let schema = int_schema(2);
        let mut base = base_pred.to_region(&schema);
        // confine the base to the oracle's grid so both sides see the same
        // universe
        base.intersect_atom(&Atom::between(0, 0.0, GRID as f64));
        base.intersect_atom(&Atom::between(1, 0.0, GRID as f64));
        let neg_refs: Vec<&Predicate> = negs.iter().collect();
        let got = sat::is_sat(&base, &neg_refs);
        let want = oracle_sat(&base, &neg_refs, 2);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn witness_is_genuine(
        base_pred in arb_predicate(3),
        negs in prop::collection::vec(arb_predicate(3), 0..4)
    ) {
        let schema = int_schema(3);
        let base = base_pred.to_region(&schema);
        let neg_refs: Vec<&Predicate> = negs.iter().collect();
        if let Some(w) = sat::find_witness(&base, &neg_refs) {
            prop_assert!(base.contains_row(&w));
            for p in &neg_refs {
                prop_assert!(!p.eval(&w), "witness satisfies an excluded predicate");
            }
        }
    }

    /// The parallel witness search agrees with the sequential one on the
    /// *verdict* (the witness row itself is first-hit-wins and may
    /// differ), and its witnesses are genuine. Exclusion lists above
    /// `PAR_WITNESS_CUTOFF` keep the fan-out path live on multi-worker
    /// pools; on a one-worker pool the call degrades to sequential, so
    /// the property holds on any host.
    #[test]
    fn parallel_witness_search_matches_sequential(
        base_pred in arb_predicate(3),
        negs in prop::collection::vec(arb_predicate(3), 0..10)
    ) {
        let schema = int_schema(3);
        let base = base_pred.to_region(&schema);
        let neg_refs: Vec<&Predicate> = negs.iter().collect();
        let seq = sat::find_witness(&base, &neg_refs);
        let par = sat::find_witness_with(&base, &neg_refs, true);
        prop_assert_eq!(seq.is_some(), par.is_some(), "SAT verdict must not depend on parallelism");
        if let Some(w) = par {
            prop_assert!(base.contains_row(&w));
            for p in &neg_refs {
                prop_assert!(!p.eval(&w), "parallel witness satisfies an excluded predicate");
            }
        }
    }

    #[test]
    fn intersect_is_conjunction(a in arb_interval(), b in arb_interval(), v in 0..=GRID) {
        let v = v as f64;
        let both = a.contains(v) && b.contains(v);
        prop_assert_eq!(a.intersect(&b).contains(v), both);
    }

    #[test]
    fn complement_partitions_line_int(iv in arb_interval(), v in 0..=GRID) {
        let v = v as f64;
        let in_iv = iv.normalize(AttrType::Int).contains(v);
        let in_comp = iv
            .complement(AttrType::Int)
            .iter()
            .any(|c| c.contains(v));
        prop_assert!(in_iv ^ in_comp, "every point is in exactly one side");
    }

    #[test]
    fn complement_partitions_line_float(iv in arb_interval(), num in -20i32..40, den in 1i32..4) {
        let v = f64::from(num) / f64::from(den);
        let in_iv = iv.contains(v);
        let in_comp = iv
            .complement(AttrType::Float)
            .iter()
            .any(|c| c.contains(v));
        prop_assert!(in_iv ^ in_comp);
    }

    #[test]
    fn interval_set_union_semantics(
        ivs in prop::collection::vec(arb_interval(), 0..6),
        v in 0..=GRID
    ) {
        let v = v as f64;
        let direct = ivs.iter().any(|iv| iv.normalize(AttrType::Int).contains(v));
        let set = IntervalSet::from_intervals(ivs.clone(), AttrType::Int);
        prop_assert_eq!(set.contains(v), direct);
        // pieces are pairwise disjoint and sorted
        let pieces = set.pieces();
        for w in pieces.windows(2) {
            prop_assert!(w[0].hi < w[1].lo, "pieces must be disjoint and sorted");
        }
    }

    #[test]
    fn interval_set_subtract_semantics(
        ivs in prop::collection::vec(arb_interval(), 1..5),
        cut in arb_interval(),
        v in 0..=GRID
    ) {
        let v = v as f64;
        let set = IntervalSet::from_intervals(ivs, AttrType::Int);
        let sub = set.subtract_interval(&cut, AttrType::Int);
        let want = set.contains(v) && !cut.normalize(AttrType::Int).contains(v);
        prop_assert_eq!(sub.contains(v), want);
    }

    #[test]
    fn containment_agrees_with_membership(a in arb_interval(), b in arb_interval()) {
        if a.contains_interval(&b, AttrType::Int) {
            for v in 0..=GRID {
                let v = v as f64;
                if b.normalize(AttrType::Int).contains(v) {
                    prop_assert!(a.contains(v));
                }
            }
        }
    }
}
