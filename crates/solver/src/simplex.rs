//! Dense two-phase primal simplex with three tiers of warm starting.
//!
//! The solver accepts the general [`LinearProgram`] model (arbitrary
//! variable bounds, ≤ / ≥ / = rows, maximize or minimize) and reduces it to
//! standard form `max cᵀy, Ay = b, y ≥ 0, b ≥ 0` by shifting, mirroring, or
//! splitting variables and adding slack/surplus/artificial columns. Phase 1
//! drives artificial variables to zero (or proves infeasibility); phase 2
//! optimizes the real objective. Bland's rule is used throughout, which
//! guarantees termination at the cost of some speed — the right trade-off
//! for a bounding engine where correctness is the product.
//!
//! # The three warm-start tiers
//!
//! * **Cold crash** — [`solve_lp`]: standardize, build the tableau, run
//!   phase 1 from the slack/artificial basis, then phase 2. This path is
//!   the property-tested oracle every warmer tier must agree with.
//! * **Basis restore** — [`solve_lp_warm`]: additionally accept the final
//!   *basis* of a previous, structurally similar solve (a [`WarmStart`]).
//!   The basis is pivoted into the fresh tableau (`crash_basis`, O(m)
//!   pivots); if it lands primal-feasible — or a dual-simplex restore can
//!   make it so — phase 1 is skipped. Any incompatibility silently falls
//!   back to the cold path, so warm starting never affects the result,
//!   only the work.
//! * **Tableau carry** — [`solve_lp_tableau`] / [`CanonicalTableau`]: keep
//!   the whole *canonical tableau*, not just the basis. The tableau is
//!   split into an owned canonical core (the dense matrix in canonical
//!   form with respect to the optimal basis, plus the standardization
//!   metadata: variable maps, cost vector, a structural snapshot of the
//!   constraints and bounds) and cheap child views built from it:
//!
//!   * [`CanonicalTableau::solve_child`] answers a branch & bound child —
//!     the parent LP with one variable bound tightened — by appending the
//!     branch bound as a single ≤-row whose slack enters the basis,
//!     running **one elimination pass** against the parent-optimal basis
//!     (a row operation, not a pivot), and dual-restoring primal
//!     feasibility. Because the parent basis stays dual-feasible under a
//!     bound cut, this costs O(1) pivots per node where the basis-restore
//!     tier pays an O(m)-pivot rebuild + crash. Parents are shared with
//!     both children via `Arc`; the first child to run clones the core
//!     lazily, the second moves it.
//!   * [`solve_lp_tableau`] with a prior whose constraints and bounds
//!     match the new program exactly re-optimizes the carried tableau
//!     under the **new objective** with zero rebuild work — the shape of
//!     an AVG binary search, where ~80 probes differ only in objective
//!     coefficients. A prior whose rows differ by a *small delta* (up to
//!     [`ADAPT_MAX_DELTA`] inserted and/or deleted ≤/≥ rows at one
//!     position, bounds unchanged — the shape of a serving session's
//!     constraint churn, where an epoch adds or retires one constraint)
//!     is **adapted in place**: deleted rows leave through their slack
//!     columns (`delete_row_of_slack`), new rows append exactly like
//!     branch bounds, and one dual restore re-establishes feasibility. A
//!     larger structural mismatch degrades to the basis-restore tier
//!     (crashing the prior's basis), and from there to cold.
//!
//!   Branch-bound rows are garbage-collected as the descent deepens: a
//!   non-redundant cut on a (variable, direction) pair strictly dominates
//!   any earlier cut on the same pair (`x ≤ 2` after `x ≤ 3`), so
//!   [`CanonicalTableau::solve_child`] retires the superseded row before
//!   appending the new one — a deep chain branching the same variables
//!   holds O(root m + variables) rows, not one row per level.
//!
//!   Carried solves count their work in [`SolveStats`] (`pivots`,
//!   `rebuilt`), so the O(m) → O(1) claim is measured, not assumed.
//!
//! Correctness never depends on a warm tier succeeding: every fast path
//! either proves its exit condition (optimality via phase-2 pricing,
//! infeasibility via an all-nonnegative row with negative rhs) or reports
//! [`ChildSolve::Stalled`] / falls back so the caller can arbitrate with a
//! cold solve.

use crate::{Constraint, ConstraintOp, LinearProgram, Sense, SolverError};
use std::sync::Arc;

/// Numeric tolerance for pivoting and feasibility decisions.
const TOL: f64 = 1e-9;

/// Spare columns reserved at build time for the slack of branch-bound
/// rows appended by [`CanonicalTableau::solve_child`]; when a descent
/// exhausts them the core re-strides with [`COL_GROW`] more.
const COL_HEADROOM: usize = 8;

/// Column-capacity growth step once the headroom is exhausted.
const COL_GROW: usize = 16;

/// Ceiling on the number of inserted + deleted constraint rows a carried
/// tableau absorbs in one adaptation ([`solve_lp_tableau`] with a prior
/// whose rows differ); past it the prior demotes to its basis. One
/// retired or added serving-session constraint is 1–2 rows (`≤ ku`, and
/// `≥ kl` when a floor survives pushdown), so 4 covers a replace.
pub const ADAPT_MAX_DELTA: usize = 4;

/// Consecutive delta adaptations after which a prior demotes to its
/// basis and rebuilds even though the delta would fit: every adaptation
/// pivots a dead row out on an uncontrolled element and permanently
/// blocks its column, so an endless serving churn chain would accumulate
/// floating-point drift and dead tableau width without bound. The
/// rebuild resets both — the adapt-path mirror of the branch & bound
/// descent's `TABLEAU_REFRESH_DEPTH`.
const ADAPT_REFRESH_LIMIT: u32 = 16;

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value (in the original sense).
    pub objective: f64,
    /// Optimal assignment for the original variables.
    pub x: Vec<f64>,
}

/// How an original variable is represented in standard form.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = y_col + lo` with `y ≥ 0`.
    Shifted { col: usize, lo: f64 },
    /// `x = hi − y_col` with `y ≥ 0` (used when only an upper bound is
    /// finite).
    Mirrored { col: usize, hi: f64 },
    /// `x = y_pos − y_neg`, both `≥ 0` (free variable).
    Split { pos: usize, neg: usize },
}

/// Standard-form row: dense coefficients over structural columns.
struct StdRow {
    coefs: Vec<f64>,
    op: ConstraintOp,
    rhs: f64,
}

/// An optimal basis carried from one solve to the next.
///
/// Opaque: obtained from [`solve_lp_warm`] and only meaningful for a
/// later program that standardizes to the same tableau shape (same row
/// count, same structural + slack column count). Mismatches are detected
/// and degrade to a cold solve.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Basis column of each tableau row.
    basis: Vec<usize>,
    /// Structural + slack column count the basis refers to.
    real_cols: usize,
}

/// Work counters of one LP solve — the honest-measurement companion of
/// the warm-start tiers. Exposed through [`CanonicalTableau::stats`] and
/// aggregated into `MilpSolution::search` by branch & bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Simplex pivots performed by this solve (basis crash + phase 1 +
    /// dual restore + phase 2 together).
    pub pivots: u64,
    /// `true` when the solve standardized the program and built a tableau
    /// from scratch (cold or basis-crash tier); `false` when it reused a
    /// carried canonical tableau (the O(1)-pivot carry tiers).
    pub rebuilt: bool,
}

/// Solve a linear program with the two-phase simplex method.
pub fn solve_lp(lp: &LinearProgram) -> Result<LpSolution, SolverError> {
    solve_core(lp, None, None, false).map(|(solution, _)| solution)
}

/// Solve, optionally warm-starting from a previous solve's [`WarmStart`],
/// and return this solve's final basis for the next one in the chain.
pub fn solve_lp_warm(
    lp: &LinearProgram,
    warm: Option<&WarmStart>,
) -> Result<(LpSolution, WarmStart), SolverError> {
    solve_core(lp, None, warm, false).map(|(solution, ct)| {
        let warm = ct.warm_start();
        (solution, warm)
    })
}

/// Solve and keep the whole canonical tableau for carrying.
///
/// `prior` is a tableau from a previous solve: when its constraint rows
/// and variable bounds match `lp` exactly, the tableau is **carried** —
/// only the objective is re-priced and phase 2 re-runs from the old
/// optimum (no standardization, no build, no crash; `stats().rebuilt`
/// is `false`). Otherwise the prior degrades to its basis
/// (`WarmStart`-tier crash) and from there to a cold solve. `basis` is a
/// separate explicit basis candidate used when no prior tableau is
/// available; an incompatible basis is ignored.
///
/// Every tier returns the same `LpSolution` (up to simplex tolerance) —
/// the priors only ever change the work, never the result.
pub fn solve_lp_tableau(
    lp: &LinearProgram,
    prior: Option<CanonicalTableau>,
    basis: Option<&WarmStart>,
) -> Result<(LpSolution, CanonicalTableau), SolverError> {
    solve_core(lp, prior, basis, true)
}

/// One new bound a branch & bound child imposes on a single variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BranchBound {
    /// `x_var ≤ value` (the down branch).
    Upper(f64),
    /// `x_var ≥ value` (the up branch).
    Lower(f64),
}

/// Outcome of a carried child solve ([`CanonicalTableau::solve_child`]).
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum ChildSolve {
    /// The child LP was solved to optimality on the carried tableau.
    Solved {
        /// The child's optimal relaxation.
        solution: LpSolution,
        /// The child's own canonical tableau, ready to carry further
        /// down the tree (its [`CanonicalTableau::stats`] cover this
        /// child solve only).
        tableau: CanonicalTableau,
    },
    /// The child LP is infeasible: the appended bound row reached a
    /// negative basic value with no negative entry to pivot on — a
    /// certificate that no nonnegative solution satisfies it. `pivots`
    /// records the dual pivots spent reaching the certificate.
    Infeasible {
        /// Dual-simplex pivots spent before the certificate.
        pivots: u64,
    },
    /// The carry could not decide the child (dual-restore iteration cap,
    /// or a numerically degenerate re-optimization). The caller must
    /// arbitrate with a rebuild; correctness never rests on this variant
    /// not occurring.
    Stalled,
}

/// The owned canonical core of a solved LP: the dense simplex tableau in
/// canonical form with respect to its optimal basis, together with the
/// standardization metadata (variable maps, phase-2 cost vector, and a
/// structural snapshot of the constraints and bounds) needed to answer
/// descendants incrementally. See the module docs for the carry tiers
/// built on top: [`CanonicalTableau::solve_child`] (branch & bound
/// children in O(1) pivots) and [`solve_lp_tableau`] (same constraints,
/// new objective — zero rebuild).
#[derive(Debug, Clone)]
pub struct CanonicalTableau {
    tab: Tableau,
    maps: Vec<VarMap>,
    /// Phase-2 cost over the live columns (`len == tab.total`).
    cost: Vec<f64>,
    obj_const: f64,
    sign: f64,
    /// Original variable count.
    n: usize,
    /// Structural column count of the standardization.
    ncols: usize,
    /// Structural + slack column count of the *root* standardization —
    /// what an exported [`WarmStart`] refers to.
    real_cols: usize,
    /// Whether the structural snapshot below was captured (only
    /// [`solve_lp_tableau`] keeps it — basis-tier and one-shot solves
    /// skip the clone, and a snapshot-less tableau never matches).
    has_snapshot: bool,
    /// Structural snapshot for [`solve_lp_tableau`] reuse: the carried
    /// tableau is valid for a new program exactly when these match
    /// (bounds are updated by [`CanonicalTableau::solve_child`], whose
    /// appended rows enforce the tightening), and adaptable when the rows
    /// differ by a small delta (see the module docs).
    constraints: Vec<Constraint>,
    bounds: Vec<(f64, f64)>,
    /// Per snapshot constraint: the tableau column of its slack/surplus
    /// (`usize::MAX` for Eq rows, which have none). A constraint's row is
    /// identified across pivots by its slack *column*, not a row index —
    /// row deletion (delta adaptation, branch-row GC) looks rows up by it.
    con_slack: Vec<usize>,
    /// Branch-bound rows appended by [`CanonicalTableau::solve_child`],
    /// tracked so a later dominating cut on the same (variable,
    /// direction) retires the row it supersedes.
    branch_rows: Vec<BranchRow>,
    /// Consecutive delta adaptations since the last rebuild; at
    /// [`ADAPT_REFRESH_LIMIT`] the next delta demotes to a basis-crash
    /// rebuild, bounding drift and dead-column growth on endless churn.
    adapt_streak: u32,
    stats: SolveStats,
}

/// One appended branch-bound row of a carried descent: which original
/// variable and direction it cuts, and the slack column that owns its
/// tableau row (rows are found by slack column, never by position).
#[derive(Debug, Clone, Copy)]
struct BranchRow {
    var: usize,
    upper: bool,
    slack: usize,
}

impl CanonicalTableau {
    /// Work counters of the solve that produced this tableau.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Whether offering this tableau as a prior for `lp` can actually pay:
    /// an exact structural match (re-price) or an in-ceiling row delta
    /// with identical bounds (adapt, streak permitting). Chain caches use
    /// this to decide whether to *take* a neighboring slot's tableau —
    /// stealing an incompatible one would demote-and-discard it, evicting
    /// another query shape's chain for nothing.
    pub fn can_reuse(&self, lp: &LinearProgram) -> bool {
        if !self.has_snapshot || self.bounds != lp.bounds {
            return false;
        }
        self.constraints == lp.constraints
            || (self.adapt_streak < ADAPT_REFRESH_LIMIT
                && delta_plan(&self.constraints, &lp.constraints).is_some())
    }

    /// Export the optimal basis for the [`solve_lp_warm`] tier.
    pub fn warm_start(&self) -> WarmStart {
        WarmStart {
            basis: self.tab.basis.clone(),
            real_cols: self.real_cols,
        }
    }

    /// Translate an original-variable row `Σ terms · x ≤ rhs` (or the
    /// negation of a ≥ row when `negate`) into standard-form columns
    /// under this tableau's variable maps.
    fn std_terms(
        &self,
        terms: &[(usize, f64)],
        rhs: f64,
        negate: bool,
    ) -> (Vec<(usize, f64)>, f64) {
        let sgn = if negate { -1.0 } else { 1.0 };
        let mut out = Vec::with_capacity(terms.len() + 1);
        let mut r = rhs * sgn;
        for &(var, coef) in terms {
            let coef = coef * sgn;
            match self.maps[var] {
                VarMap::Shifted { col, lo } => {
                    out.push((col, coef));
                    r -= coef * lo;
                }
                VarMap::Mirrored { col, hi } => {
                    out.push((col, -coef));
                    r -= coef * hi;
                }
                VarMap::Split { pos, neg } => {
                    out.push((pos, coef));
                    out.push((neg, -coef));
                }
            }
        }
        (out, r)
    }

    /// Mutate the carried tableau from its snapshot's rows to `lp`'s:
    /// delete the `deleted` snapshot rows at `prefix` through their slack
    /// columns, then append the `inserted` new rows (each entering on its
    /// own basic slack). Dual restore and re-optimization are the
    /// caller's job. `false` means a deletion hit a numerically unusable
    /// pivot — the tableau is then untrustworthy and must be discarded.
    fn apply_delta(
        &mut self,
        lp: &LinearProgram,
        prefix: usize,
        deleted: usize,
        inserted: usize,
    ) -> bool {
        for k in (prefix..prefix + deleted).rev() {
            let slack = self.con_slack[k];
            debug_assert_ne!(slack, usize::MAX, "delta_plan rejects Eq rows");
            if !self.tab.delete_row_of_slack(slack) {
                return false;
            }
            self.con_slack.remove(k);
        }
        for k in 0..inserted {
            let cons = &lp.constraints[prefix + k];
            let negate = match cons.op {
                ConstraintOp::Le => false,
                ConstraintOp::Ge => true,
                ConstraintOp::Eq => return false,
            };
            let (terms, rhs) = self.std_terms(&cons.terms, cons.rhs, negate);
            let slack = self.tab.append_le_row(&terms, rhs);
            self.con_slack.insert(prefix + k, slack);
        }
        true
    }

    /// Recover the original-variable solution from the tableau's basic
    /// values.
    fn recover(&self, value: f64) -> LpSolution {
        let mut y = vec![0.0; self.tab.total];
        for r in 0..self.tab.m {
            y[self.tab.basis[r]] = self.tab.rhs(r);
        }
        let mut x = vec![0.0; self.n];
        for (i, map) in self.maps.iter().enumerate() {
            x[i] = match *map {
                VarMap::Shifted { col, lo } => y[col] + lo,
                VarMap::Mirrored { col, hi } => hi - y[col],
                VarMap::Split { pos, neg } => y[pos] - y[neg],
            };
        }
        LpSolution {
            objective: (value + self.obj_const) * self.sign,
            x,
        }
    }

    /// Solve the child LP obtained by tightening one variable bound — the
    /// branch & bound hot path. The parent is shared via [`Arc`] so both
    /// children can descend from one snapshot: the first to run clones
    /// the core lazily, the last moves it (zero copies).
    ///
    /// The child appends its branch bound as one ≤-row (slack basic, rhs
    /// possibly negative — this is the point: dual simplex repairs it),
    /// eliminates the row against the parent-optimal basis in a single
    /// pass, dual-restores, and re-verifies phase-2 optimality. Because
    /// the parent basis stays dual-feasible under a bound cut, this is
    /// O(1) pivots per node where a rebuild + basis crash pays O(m).
    ///
    /// Every exit is either proven ([`ChildSolve::Solved`] by phase-2
    /// pricing, [`ChildSolve::Infeasible`] by an all-nonnegative row with
    /// negative rhs — valid independent of the basis, since the row is a
    /// linear combination of the original equations) or an explicit
    /// [`ChildSolve::Stalled`] the caller must arbitrate cold.
    pub fn solve_child(parent: Arc<Self>, var: usize, bound: BranchBound) -> ChildSolve {
        if var >= parent.n || !parent.has_snapshot {
            // No snapshot means no bounds bookkeeping to branch against —
            // only solve_lp_tableau-produced parents can carry children.
            return ChildSolve::Stalled;
        }
        let mut ct = Arc::try_unwrap(parent).unwrap_or_else(|arc| (*arc).clone());
        let (cur_lo, cur_hi) = ct.bounds[var];
        let (new_lo, new_hi, redundant) = match bound {
            BranchBound::Upper(h) => (cur_lo, cur_hi.min(h), h >= cur_hi),
            BranchBound::Lower(l) => (cur_lo.max(l), cur_hi, l <= cur_lo),
        };
        if new_lo > new_hi {
            return ChildSolve::Infeasible { pivots: 0 };
        }
        let start = ct.tab.pivots;
        if !redundant {
            ct.bounds[var] = (new_lo, new_hi);
            let upper = matches!(bound, BranchBound::Upper(_));
            // Dominated-row GC: a non-redundant cut on the same (variable,
            // direction) strictly tightens the earlier one (`x ≤ 2` after
            // `x ≤ 3`), so the superseded row is implied by the new row —
            // retire it before appending. A deep descent branching the
            // same variables holds O(root m + variables) rows instead of
            // one per level; at the periodic refresh the survivors fold
            // into the node bounds for free (the rebuild standardizes from
            // the merged bounds, not from rows).
            if let Some(pos) = ct
                .branch_rows
                .iter()
                .position(|b| b.var == var && b.upper == upper)
            {
                let dead = ct.branch_rows[pos].slack;
                if !ct.tab.delete_row_of_slack(dead) {
                    return ChildSolve::Stalled;
                }
                ct.branch_rows.remove(pos);
            }
            // Translate the bound into standard-form coordinates. All
            // three shapes become a ≤-row with a fresh basic slack; the
            // rhs is *not* sign-normalized (a negative basic value is
            // exactly what the dual restore exists to repair).
            let (terms, rhs): ([(usize, f64); 2], f64) = match (ct.maps[var], bound) {
                (VarMap::Shifted { col, lo }, BranchBound::Upper(h)) => {
                    ([(col, 1.0), (col, 0.0)], h - lo)
                }
                (VarMap::Shifted { col, lo }, BranchBound::Lower(l)) => {
                    ([(col, -1.0), (col, 0.0)], lo - l)
                }
                (VarMap::Mirrored { col, hi }, BranchBound::Upper(h)) => {
                    ([(col, -1.0), (col, 0.0)], h - hi)
                }
                (VarMap::Mirrored { col, hi }, BranchBound::Lower(l)) => {
                    ([(col, 1.0), (col, 0.0)], hi - l)
                }
                (VarMap::Split { pos, neg }, BranchBound::Upper(h)) => {
                    ([(pos, 1.0), (neg, -1.0)], h)
                }
                (VarMap::Split { pos, neg }, BranchBound::Lower(l)) => {
                    ([(pos, -1.0), (neg, 1.0)], -l)
                }
            };
            let slack = ct.tab.append_le_row(&terms, rhs);
            ct.branch_rows.push(BranchRow { var, upper, slack });
            ct.cost.push(0.0);
            debug_assert_eq!(ct.cost.len(), ct.tab.total);
            match ct.tab.dual_restore(&ct.cost) {
                DualOutcome::Feasible => {}
                DualOutcome::Infeasible => {
                    return ChildSolve::Infeasible {
                        pivots: ct.tab.pivots - start,
                    }
                }
                DualOutcome::Stalled => return ChildSolve::Stalled,
            }
        }
        match ct.tab.optimize(&ct.cost) {
            Ok(value) => {
                ct.stats = SolveStats {
                    pivots: ct.tab.pivots - start,
                    rebuilt: false,
                };
                let solution = ct.recover(value);
                ChildSolve::Solved {
                    solution,
                    tableau: ct,
                }
            }
            // A child of a bounded parent cannot be genuinely unbounded
            // and a pivot-limit blowup means the carry went numerically
            // sideways either way: hand the node back for a cold rebuild.
            Err(_) => ChildSolve::Stalled,
        }
    }
}

/// Standard form of one [`LinearProgram`]: the variable mapping, the
/// translated objective, and the translated rows — everything needed to
/// build (or price) a tableau.
struct StdForm {
    maps: Vec<VarMap>,
    c: Vec<f64>,
    obj_const: f64,
    sign: f64,
    rows: Vec<StdRow>,
    ncols: usize,
    real_cols: usize,
}

/// Map `lp.objective` into structural costs under an existing variable
/// mapping. Returns `(c, obj_const, sign)`.
fn objective_under(maps: &[VarMap], ncols: usize, lp: &LinearProgram) -> (Vec<f64>, f64, f64) {
    let sign = match lp.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let mut c = vec![0.0; ncols];
    let mut obj_const = 0.0;
    for (i, &ci) in lp.objective.iter().enumerate() {
        let ci = ci * sign;
        match maps[i] {
            VarMap::Shifted { col, lo } => {
                c[col] += ci;
                obj_const += ci * lo;
            }
            VarMap::Mirrored { col, hi } => {
                c[col] -= ci;
                obj_const += ci * hi;
            }
            VarMap::Split { pos, neg } => {
                c[pos] += ci;
                c[neg] -= ci;
            }
        }
    }
    (c, obj_const, sign)
}

impl StdForm {
    /// Standardize a validated program (steps 1–2 of the classic
    /// reduction: variable mapping, objective, constraint and bound rows).
    fn new(lp: &LinearProgram) -> StdForm {
        let n = lp.num_vars();

        // --- 1. Map variables into non-negative standard-form columns. ---
        let mut maps = Vec::with_capacity(n);
        let mut ncols = 0usize;
        for &(lo, hi) in &lp.bounds {
            let m = if lo.is_finite() {
                let col = ncols;
                ncols += 1;
                VarMap::Shifted { col, lo }
            } else if hi.is_finite() {
                let col = ncols;
                ncols += 1;
                VarMap::Mirrored { col, hi }
            } else {
                let pos = ncols;
                let neg = ncols + 1;
                ncols += 2;
                VarMap::Split { pos, neg }
            };
            maps.push(m);
        }

        let (c, obj_const, sign) = objective_under(&maps, ncols, lp);

        // --- 2. Translate constraints (and finite upper bounds) to rows. -
        let mut rows: Vec<StdRow> = Vec::with_capacity(lp.constraints.len() + n);
        for cons in &lp.constraints {
            let mut coefs = vec![0.0; ncols];
            let mut rhs = cons.rhs;
            for &(var, coef) in &cons.terms {
                match maps[var] {
                    VarMap::Shifted { col, lo } => {
                        coefs[col] += coef;
                        rhs -= coef * lo;
                    }
                    VarMap::Mirrored { col, hi } => {
                        coefs[col] -= coef;
                        rhs -= coef * hi;
                    }
                    VarMap::Split { pos, neg } => {
                        coefs[pos] += coef;
                        coefs[neg] -= coef;
                    }
                }
            }
            rows.push(StdRow {
                coefs,
                op: cons.op,
                rhs,
            });
        }
        // Bounds not absorbed by the shift become explicit rows.
        for (i, &(lo, hi)) in lp.bounds.iter().enumerate() {
            match maps[i] {
                VarMap::Shifted { col, lo: shift } if hi.is_finite() => {
                    let mut coefs = vec![0.0; ncols];
                    coefs[col] = 1.0;
                    rows.push(StdRow {
                        coefs,
                        op: ConstraintOp::Le,
                        rhs: hi - shift,
                    });
                }
                VarMap::Split { pos, neg } => {
                    // Free variable: both bounds infinite, nothing to add.
                    debug_assert!(!lo.is_finite() && !hi.is_finite());
                    let _ = (pos, neg);
                }
                _ => {}
            }
        }

        let n_slack = rows
            .iter()
            .filter(|r| !matches!(r.op, ConstraintOp::Eq))
            .count();
        StdForm {
            maps,
            c,
            obj_const,
            sign,
            rows,
            ncols,
            real_cols: ncols + n_slack,
        }
    }

    /// Build the simplex tableau with slacks and artificials (plus column
    /// headroom for carried branch rows). Returns the tableau and the
    /// artificial column indices.
    fn build_tableau(&self) -> (Tableau, Vec<usize>) {
        let m = self.rows.len();
        // Columns: structural | slack/surplus | artificial | headroom | rhs
        let total = self.real_cols + m; // upper bound on artificial count
        let stride = total + COL_HEADROOM + 1;
        let mut a = vec![0.0; m * stride];
        let mut basis = vec![usize::MAX; m];
        let mut slack_at = self.ncols;
        let mut art_at = self.real_cols;
        let mut artificials = Vec::new();

        for (r, row) in self.rows.iter().enumerate() {
            let (mut coefs, mut rhs) = (row.coefs.clone(), row.rhs);
            let mut op = row.op;
            if rhs < 0.0 {
                for v in &mut coefs {
                    *v = -*v;
                }
                rhs = -rhs;
                op = match op {
                    ConstraintOp::Le => ConstraintOp::Ge,
                    ConstraintOp::Ge => ConstraintOp::Le,
                    ConstraintOp::Eq => ConstraintOp::Eq,
                };
            }
            for (j, &v) in coefs.iter().enumerate() {
                a[r * stride + j] = v;
            }
            a[r * stride + stride - 1] = rhs;
            match op {
                ConstraintOp::Le => {
                    a[r * stride + slack_at] = 1.0;
                    basis[r] = slack_at;
                    slack_at += 1;
                }
                ConstraintOp::Ge => {
                    a[r * stride + slack_at] = -1.0;
                    slack_at += 1;
                    a[r * stride + art_at] = 1.0;
                    basis[r] = art_at;
                    artificials.push(art_at);
                    art_at += 1;
                }
                ConstraintOp::Eq => {
                    a[r * stride + art_at] = 1.0;
                    basis[r] = art_at;
                    artificials.push(art_at);
                    art_at += 1;
                }
            }
        }
        (
            Tableau {
                a,
                basis,
                m,
                total,
                stride,
                blocked: Vec::new(),
                pivots: 0,
            },
            artificials,
        )
    }
}

/// How a carried prior tableau was (or was not) usable for a new program.
enum PriorOutcome {
    /// The prior answered the program (exactly re-priced, or adapted by a
    /// small row delta).
    Solved(LpSolution, Box<CanonicalTableau>),
    /// The prior's structure is too different — crash its basis instead.
    Demote(WarmStart),
    /// The prior was mutated mid-adaptation and can no longer vouch for
    /// anything; rebuild cold with no warm candidate from it.
    Discard,
}

/// Row delta between a carried snapshot and a new program: the longest
/// common prefix and suffix bracket one block of `deleted` prior rows
/// replaced by `inserted` new rows — the shape of a serving epoch's
/// add/retire/replace. `None` when the delta exceeds [`ADAPT_MAX_DELTA`]
/// or touches an Eq row (no slack column to delete by; an insert would
/// need two rows).
fn delta_plan(old: &[Constraint], new: &[Constraint]) -> Option<(usize, usize, usize)> {
    let prefix = old.iter().zip(new).take_while(|(a, b)| a == b).count();
    let max_suffix = old.len().min(new.len()) - prefix;
    let suffix = (0..max_suffix)
        .take_while(|&k| old[old.len() - 1 - k] == new[new.len() - 1 - k])
        .count();
    let deleted = old.len() - prefix - suffix;
    let inserted = new.len() - prefix - suffix;
    if deleted + inserted == 0 || deleted + inserted > ADAPT_MAX_DELTA {
        return None;
    }
    let no_eq = |c: &Constraint| c.op != ConstraintOp::Eq;
    if !old[prefix..prefix + deleted].iter().all(no_eq)
        || !new[prefix..prefix + inserted].iter().all(no_eq)
    {
        return None;
    }
    Some((prefix, deleted, inserted))
}

/// Tier 3: answer `lp` on a carried prior. An exact structural match
/// re-prices in place; a small row delta (same bounds) is absorbed by
/// [`CanonicalTableau::apply_delta`] + dual restore. Every success is
/// re-verified by phase-2 pricing, so a prior can cost work but never
/// change a result.
fn try_prior(mut ct: CanonicalTableau, lp: &LinearProgram) -> PriorOutcome {
    if !ct.has_snapshot || ct.bounds != lp.bounds {
        return PriorOutcome::Demote(ct.warm_start());
    }
    let exact = ct.constraints == lp.constraints;
    let delta = if exact {
        None
    } else {
        if ct.adapt_streak >= ADAPT_REFRESH_LIMIT {
            // periodic refresh: rebuild from the basis instead of
            // adapting forever (see ADAPT_REFRESH_LIMIT)
            return PriorOutcome::Demote(ct.warm_start());
        }
        match delta_plan(&ct.constraints, &lp.constraints) {
            Some(plan) => Some(plan),
            None => return PriorOutcome::Demote(ct.warm_start()),
        }
    };
    let start = ct.tab.pivots;
    if let Some((prefix, deleted, inserted)) = delta {
        if !ct.apply_delta(lp, prefix, deleted, inserted) {
            return PriorOutcome::Discard;
        }
    }
    let adapted = !exact;
    let (c, obj_const, sign) = objective_under(&ct.maps, ct.ncols, lp);
    let mut cost = vec![0.0; ct.tab.total];
    cost[..ct.ncols].copy_from_slice(&c);
    // On an exact match the basis is primal-feasible (the prior ended
    // optimal on the same rows) and only the pricing changed; an adapted
    // tableau first restores the feasibility its row churn may have
    // broken. A restore that cannot finish — including an infeasibility
    // certificate, which on a freshly mutated tableau we do not trust to
    // decide the result — discards the prior and lets the cold oracle
    // arbitrate.
    if adapted && ct.tab.dual_restore(&cost) != DualOutcome::Feasible {
        return PriorOutcome::Discard;
    }
    match ct.tab.optimize(&cost) {
        Ok(value) => {
            ct.cost = cost;
            ct.obj_const = obj_const;
            ct.sign = sign;
            if adapted {
                ct.constraints = lp.constraints.clone();
                ct.adapt_streak += 1;
            }
            ct.stats = SolveStats {
                pivots: ct.tab.pivots - start,
                rebuilt: false,
            };
            let solution = ct.recover(value);
            PriorOutcome::Solved(solution, Box::new(ct))
        }
        // A carried re-optimization that errors (iteration cap on a
        // drifted tableau, or an apparent unbounded ray) must not decide
        // the result — the prior only ever changes the work. Demote to
        // the basis tier (or discard a mutated tableau, whose basis
        // matches no fresh standardization) and let the rebuild
        // arbitrate; a genuinely unbounded program re-derives its error
        // cold.
        Err(_) if adapted => PriorOutcome::Discard,
        Err(_) => PriorOutcome::Demote(ct.warm_start()),
    }
}

/// The shared solver core behind every public entry point. `prior` is a
/// carried tableau (reused outright on a structural match, adapted on a
/// small row delta, demoted to its basis otherwise); `basis` is an
/// explicit crash candidate consulted when no matching prior exists.
fn solve_core(
    lp: &LinearProgram,
    prior: Option<CanonicalTableau>,
    basis: Option<&WarmStart>,
    keep_snapshot: bool,
) -> Result<(LpSolution, CanonicalTableau), SolverError> {
    lp.validate()?;

    // --- Tier 3: carried tableau — re-price, or adapt a small row delta. -
    let mut demoted: Option<WarmStart> = None;
    if let Some(ct) = prior {
        match try_prior(ct, lp) {
            PriorOutcome::Solved(solution, ct) => return Ok((solution, *ct)),
            PriorOutcome::Demote(w) => demoted = Some(w),
            PriorOutcome::Discard => {}
        }
    }
    let warm = basis.or(demoted.as_ref());

    // --- Tiers 2/1: standardize and build fresh. --------------------------
    let std_form = StdForm::new(lp);
    let (pristine, pristine_artificials) = std_form.build_tableau();
    let total = pristine.total;
    let real_cols = std_form.real_cols;
    // Phase-2 cost vector, built early: the dual restore prices entering
    // columns against it.
    let mut cost = vec![0.0; total];
    cost[..std_form.ncols].copy_from_slice(&std_form.c);

    // Warm path: pivot the previous basis into a copy of the fresh
    // tableau and skip phase 1 if it can be made primal-feasible. The
    // pristine build is kept so a failed crash falls through to the cold
    // path without re-standardizing.
    //
    // A crashed basis that is *not* primal-feasible can still pay — but
    // only when the cold alternative is expensive, i.e. the LP has Ge/Eq
    // rows whose artificials force a real phase 1. That is exactly the
    // branch & bound child shape: the parent's *optimal* basis revisited
    // after one variable bound tightened keeps its reduced costs ≤ 0
    // (costs unchanged), so a few dual simplex pivots restore
    // feasibility. For an all-Le program the slack basis is feasible for
    // free, a cold start pays no phase 1, and both the crash and a
    // dual restore of a stale chain basis (whose dual feasibility a *new
    // objective* voids anyway) are pure overhead — so there the warm
    // basis is only used when it crashes in primal-feasible as-is.
    let mut warmed: Option<Tableau> = None;
    if let Some(w) = warm {
        if w.real_cols == real_cols && w.basis.len() == pristine.m {
            let phase1_is_costly = !pristine_artificials.is_empty();
            let mut tab = pristine.clone();
            let artificials = pristine_artificials.clone();
            if crash_basis(&mut tab, &w.basis, real_cols) {
                // Freeze artificial columns at zero exactly as a phase-1
                // exit would (keeping the unit column of any artificial
                // that stayed basic on a redundant row).
                for &j in &artificials {
                    for r in 0..tab.m {
                        if tab.basis[r] != j {
                            tab.set(r, j, 0.0);
                        }
                    }
                }
                tab.blocked = artificials;
                if tab.primal_feasible()
                    || (phase1_is_costly
                        && matches!(tab.dual_restore(&cost), DualOutcome::Feasible))
                {
                    warmed = Some(tab);
                }
            }
        }
    }

    // Cold path: phase 1 drives artificials out.
    let mut tab = match warmed {
        Some(tab) => tab,
        None => {
            let (mut tab, artificials) = (pristine, pristine_artificials);
            if !artificials.is_empty() {
                let mut phase1_cost = vec![0.0; total];
                for &j in &artificials {
                    phase1_cost[j] = -1.0;
                }
                let value = tab.optimize(&phase1_cost)?;
                if value < -1e-7 {
                    return Err(SolverError::Infeasible);
                }
                // Pivot any artificial still in the basis out (degenerate
                // rows), or verify its value is zero.
                for r in 0..tab.m {
                    if artificials.contains(&tab.basis[r]) {
                        let pivot_col = (0..real_cols)
                            .find(|&j| tab.at(r, j).abs() > TOL && !artificials.contains(&j));
                        if let Some(j) = pivot_col {
                            tab.pivot(r, j);
                        } else {
                            // Row is all-zero over real columns: redundant.
                            debug_assert!(tab.rhs(r).abs() <= 1e-7);
                        }
                    }
                }
                // Freeze artificial columns at zero so phase 2 never
                // re-enters them.
                for &j in &artificials {
                    for r in 0..tab.m {
                        if tab.basis[r] != j {
                            tab.set(r, j, 0.0);
                        }
                    }
                }
                tab.blocked = artificials;
            }
            tab
        }
    };

    // Phase 2: the real objective.
    let value = tab.optimize(&cost)?;

    let pivots = tab.pivots;
    let (constraints, bounds, con_slack) = if keep_snapshot {
        // Slack columns are assigned one per non-Eq row in row order, and
        // the constraint rows precede the bound rows (a build-time
        // sign-flip swaps Le/Ge but never adds or removes the slack).
        let mut slack_at = std_form.ncols;
        let con_slack = lp
            .constraints
            .iter()
            .map(|c| match c.op {
                ConstraintOp::Eq => usize::MAX,
                ConstraintOp::Le | ConstraintOp::Ge => {
                    let s = slack_at;
                    slack_at += 1;
                    s
                }
            })
            .collect();
        (lp.constraints.clone(), lp.bounds.clone(), con_slack)
    } else {
        // The caller will only ever extract the basis (solve_lp /
        // solve_lp_warm / basis-tier node solves): skip the structural
        // clone those paths would immediately drop.
        (Vec::new(), Vec::new(), Vec::new())
    };
    let ct = CanonicalTableau {
        tab,
        maps: std_form.maps,
        cost,
        obj_const: std_form.obj_const,
        sign: std_form.sign,
        n: lp.num_vars(),
        ncols: std_form.ncols,
        real_cols,
        has_snapshot: keep_snapshot,
        constraints,
        bounds,
        con_slack,
        branch_rows: Vec::new(),
        adapt_streak: 0,
        stats: SolveStats {
            pivots,
            rebuilt: true,
        },
    };
    let solution = ct.recover(value);
    Ok((solution, ct))
}

/// Pivot `basis[r]` into row `r` for every row. Returns `true` only if
/// every pivot element is usable and any artificial-basic rows are sound
/// (see below) — the caller then decides whether the basic solution is
/// primal-feasible as-is or needs a dual restore first. A basis entry in
/// the artificial range is allowed when it is that row's own artificial
/// (a redundant row whose artificial stayed basic at zero in the previous
/// solve); the row is left on its fresh artificial, and soundness then
/// requires its value to be ~0 with no live real coefficients. On `false`
/// the tableau is garbage and must be rebuilt.
fn crash_basis(tab: &mut Tableau, basis: &[usize], real_cols: usize) -> bool {
    let m = tab.m;
    let mut assigned = vec![false; m];
    let mut art_row = vec![false; m];
    // Rows the previous solve left on an artificial (redundant rows):
    // acceptable only on the row owning that artificial in the fresh
    // tableau (identical construction order ⇒ identical column), where
    // there is nothing to pivot.
    for r in 0..m {
        if basis[r] >= real_cols {
            if tab.basis[r] != basis[r] {
                return false;
            }
            assigned[r] = true;
            art_row[r] = true;
        }
    }
    // Eliminate each structural/slack basis column with free row choice
    // (partial pivoting): the row labels of a basis are arbitrary, and the
    // fresh tableau may have a zero exactly where the old tableau had the
    // unit — only nonsingularity matters.
    for &j in basis {
        if j >= real_cols {
            continue;
        }
        let row = (0..m).filter(|&r| !assigned[r]).max_by(|&a, &b| {
            tab.at(a, j)
                .abs()
                .partial_cmp(&tab.at(b, j).abs())
                .expect("no NaN in tableau")
        });
        let Some(row) = row else {
            return false;
        };
        if tab.at(row, j).abs() <= TOL {
            return false;
        }
        tab.pivot(row, j);
        assigned[row] = true;
    }
    (0..m).all(|r| {
        if art_row[r] {
            // A basic artificial is only sound if its row is redundant in
            // *this* LP too: zero rhs AND all-zero over the real columns.
            // Such a row can never change again (every future pivot
            // multiplier against it is one of those zeros), so the
            // artificial provably stays at 0. A merely-zero rhs is NOT
            // enough — phase 2 could later grow the artificial through a
            // negative entry in the entering column (its row skips the
            // ratio test) and report an infeasible "optimum".
            tab.rhs(r).abs() <= 1e-7 && (0..real_cols).all(|j| tab.at(r, j).abs() <= 1e-7)
        } else {
            // Negative rhs here is *recoverable* (dual restore), not a
            // reason to scrap the crash.
            true
        }
    })
}

/// Exit state of a dual-simplex restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DualOutcome {
    /// Primal feasibility restored.
    Feasible,
    /// A row with negative basic value has no negative entry over the
    /// admissible columns: the canonical row `Σ aⱼ yⱼ = rhs < 0` with all
    /// `aⱼ ≥ 0` is a linear combination of the original equations, so no
    /// `y ≥ 0` can satisfy it — an infeasibility certificate that holds
    /// regardless of the starting basis.
    Infeasible,
    /// Iteration cap: give up, let the caller rebuild cold.
    Stalled,
}

/// Dense row-major simplex tableau in canonical form (basis columns are
/// unit vectors). The backing rows are allocated with spare column
/// capacity (`stride − 1 − total` zero columns between the live columns
/// and the rhs, which sits at `stride − 1`), so a carried descent can
/// append branch rows and their slack columns without re-laying the
/// matrix out; `grow` re-strides when the headroom runs dry.
#[derive(Debug, Clone)]
struct Tableau {
    a: Vec<f64>,
    basis: Vec<usize>,
    m: usize,
    /// Live column count (structural + slack + artificial + appended).
    total: usize,
    /// Allocated row width; rhs at `stride - 1`.
    stride: usize,
    /// Artificial columns frozen after phase 1; never re-enter the basis.
    blocked: Vec<usize>,
    /// Lifetime pivot count (for [`SolveStats`]).
    pivots: u64,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, j: usize) -> f64 {
        self.a[r * self.stride + j]
    }

    #[inline]
    fn set(&mut self, r: usize, j: usize, v: f64) {
        self.a[r * self.stride + j] = v;
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.a[r * self.stride + self.stride - 1]
    }

    /// Re-stride every row with `extra` more spare columns (the rhs moves
    /// to the new last column; live columns keep their indices).
    fn grow(&mut self, extra: usize) {
        let new_stride = self.stride + extra;
        let mut a = vec![0.0; self.m * new_stride];
        for r in 0..self.m {
            let src = r * self.stride;
            let dst = r * new_stride;
            a[dst..dst + self.stride - 1].copy_from_slice(&self.a[src..src + self.stride - 1]);
            a[dst + new_stride - 1] = self.a[src + self.stride - 1];
        }
        self.a = a;
        self.stride = new_stride;
    }

    /// Claim the next spare column (growing if needed). Spare columns are
    /// all-zero by construction and stay so under row operations, so the
    /// claimed column is a valid fresh slack.
    fn append_column(&mut self) -> usize {
        if self.total + 1 >= self.stride {
            self.grow(COL_GROW);
        }
        let col = self.total;
        self.total += 1;
        col
    }

    /// Append `terms · y ≤ rhs` as a canonical row: a fresh slack enters
    /// the basis and the row is eliminated against the current basis in
    /// **one pass** of row operations (no pivots — each basic column of a
    /// canonical tableau is a unit vector, so subtracting
    /// `new_row[basis[r]] · row_r` per row zeroes them all without
    /// interaction). The rhs is left sign-as-is: a negative basic slack
    /// is the dual restore's job. Returns the new row's slack column (the
    /// handle [`Tableau::delete_row_of_slack`] retires it by).
    fn append_le_row(&mut self, terms: &[(usize, f64)], rhs: f64) -> usize {
        let slack = self.append_column();
        let last = self.m;
        self.a.extend(std::iter::repeat_n(0.0, self.stride));
        self.m += 1;
        self.basis.push(slack);
        let base = last * self.stride;
        for &(j, v) in terms {
            self.a[base + j] += v;
        }
        self.a[base + slack] = 1.0;
        self.a[base + self.stride - 1] = rhs;
        for r in 0..last {
            let bcol = self.basis[r];
            let f = self.a[base + bcol];
            if f == 0.0 {
                continue;
            }
            let row = r * self.stride;
            for j in 0..self.stride {
                let v = self.a[row + j];
                if v != 0.0 {
                    self.a[base + j] -= f * v;
                }
            }
            // Exact zero on the eliminated basic column kills roundoff.
            self.a[base + bcol] = 0.0;
        }
        slack
    }

    /// Remove the constraint row owned by slack/surplus column `s` from
    /// the canonical tableau. The column `s` is (±) the `B⁻¹`-image of
    /// that original row's unit vector, so once `s` is basic in some row,
    /// every *other* tableau row carries zero weight of the original row
    /// — dropping the basic row (and blocking the dead column) yields
    /// exactly the canonical tableau of the system without it. A nonbasic
    /// `s` is first pivoted in on its largest-magnitude entry; primal and
    /// dual feasibility may break, which the caller's dual restore +
    /// re-optimization repair. Returns `false` when no usable pivot
    /// exists (degenerate numerics) — the tableau is then untrustworthy
    /// and must be rebuilt.
    fn delete_row_of_slack(&mut self, s: usize) -> bool {
        let row = match (0..self.m).find(|&r| self.basis[r] == s) {
            Some(r) => r,
            None => {
                let Some(r) = (0..self.m).max_by(|&a, &b| {
                    self.at(a, s)
                        .abs()
                        .partial_cmp(&self.at(b, s).abs())
                        .expect("no NaN in tableau")
                }) else {
                    return false;
                };
                if self.at(r, s).abs() <= TOL {
                    return false;
                }
                self.pivot(r, s);
                r
            }
        };
        let start = row * self.stride;
        self.a.drain(start..start + self.stride);
        self.basis.remove(row);
        self.m -= 1;
        // The dead column is all-zero in the remaining rows (it was
        // basic); block it so a deleted original row can never re-enter.
        self.blocked.push(s);
        true
    }

    /// Gauss-pivot on `(row, col)` and update the basis.
    fn pivot(&mut self, row: usize, col: usize) {
        #[cfg(feature = "fault")]
        pc_budget::fault::point("simplex::pivot");
        let w = self.stride;
        let p = self.at(row, col);
        debug_assert!(p.abs() > TOL, "pivot on (near-)zero element");
        let inv = 1.0 / p;
        for j in 0..w {
            self.a[row * w + j] *= inv;
        }
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let f = self.at(r, col);
            if f == 0.0 {
                continue;
            }
            for j in 0..w {
                let v = self.a[row * w + j];
                self.a[r * w + j] -= f * v;
            }
        }
        self.basis[row] = col;
        self.pivots += 1;
    }

    /// All basic values non-negative (within the feasibility tolerance)?
    fn primal_feasible(&self) -> bool {
        (0..self.m).all(|r| self.rhs(r) >= -1e-7)
    }

    /// Dual simplex pivots from a (near-)dual-feasible basis: repeatedly
    /// pivot the most negative basic value out, entering the column that
    /// keeps reduced costs non-positive (min ratio `dⱼ / a_rⱼ` over
    /// `a_rⱼ < 0`, index tie-break). This is the warm-start workhorse for
    /// branch & bound: a parent-optimal basis stays dual-feasible after a
    /// child tightens one variable bound, so feasibility comes back in a
    /// handful of pivots instead of a cold phase 1.
    ///
    /// Returns [`DualOutcome::Feasible`] when primal feasibility was
    /// restored, [`DualOutcome::Infeasible`] when a leaving row had no
    /// admissible entering column (a basis-independent infeasibility
    /// certificate — see the variant docs), and [`DualOutcome::Stalled`]
    /// at the iteration cap. Basis-restore callers treat the last two
    /// identically ("give up, rebuild cold" — the cold path is the
    /// arbiter); the tableau-carry tier trusts the certificate to prune
    /// without a rebuild.
    fn dual_restore(&mut self, cost: &[f64]) -> DualOutcome {
        let iter_limit = 100 + 10 * (self.m + self.total);
        for _ in 0..iter_limit {
            // Leaving row: most negative basic value.
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.m {
                let v = self.rhs(r);
                if v < -1e-7 && leave.is_none_or(|(_, worst)| v < worst) {
                    leave = Some((r, v));
                }
            }
            let Some((row, _)) = leave else {
                return DualOutcome::Feasible;
            };
            // Entering column: among negative entries of the leaving row,
            // the one whose reduced cost-to-entry ratio is smallest keeps
            // d ≤ 0 everywhere after the pivot.
            let mut enter: Option<(usize, f64)> = None;
            for j in 0..self.total {
                if self.blocked.contains(&j) {
                    continue;
                }
                let arj = self.at(row, j);
                if arj < -TOL {
                    let mut d = cost[j];
                    for r2 in 0..self.m {
                        let cb = cost[self.basis[r2]];
                        if cb != 0.0 {
                            d -= cb * self.at(r2, j);
                        }
                    }
                    let ratio = d / arj;
                    let better = match enter {
                        None => true,
                        Some((_, best)) => ratio < best - TOL,
                    };
                    if better {
                        enter = Some((j, ratio));
                    }
                }
            }
            let Some((col, _)) = enter else {
                return DualOutcome::Infeasible;
            };
            self.pivot(row, col);
        }
        DualOutcome::Stalled
    }

    /// Maximize `cost · y` from the current basic feasible solution.
    /// Returns the optimal objective value. Uses Bland's rule.
    fn optimize(&mut self, cost: &[f64]) -> Result<f64, SolverError> {
        let iter_limit = 200 + 50 * (self.m + self.total);
        for _ in 0..iter_limit {
            // Reduced costs: c_j − c_B · B⁻¹A_j (computed from the
            // canonical tableau).
            let mut entering = None;
            for j in 0..self.total {
                if self.blocked.contains(&j) {
                    continue;
                }
                let mut red = cost[j];
                for r in 0..self.m {
                    let cb = cost[self.basis[r]];
                    if cb != 0.0 {
                        red -= cb * self.at(r, j);
                    }
                }
                if red > TOL {
                    entering = Some(j);
                    break; // Bland: smallest index
                }
            }
            let Some(col) = entering else {
                // Optimal: objective = c_B · x_B
                let mut v = 0.0;
                for r in 0..self.m {
                    v += cost[self.basis[r]] * self.rhs(r);
                }
                return Ok(v);
            };
            // Ratio test, Bland tie-break on basis variable index.
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.m {
                let arj = self.at(r, col);
                if arj > TOL {
                    let ratio = self.rhs(r) / arj;
                    match leave {
                        None => leave = Some((r, ratio)),
                        Some((lr, lratio)) => {
                            if ratio < lratio - TOL
                                || ((ratio - lratio).abs() <= TOL && self.basis[r] < self.basis[lr])
                            {
                                leave = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leave else {
                return Err(SolverError::Unbounded);
            };
            self.pivot(row, col);
        }
        Err(SolverError::LimitExceeded(iter_limit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintOp::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  → 36 at (2, 6)
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
        lp.add_constraint(vec![(0, 1.0)], Le, 4.0);
        lp.add_constraint(vec![(1, 2.0)], Le, 12.0);
        lp.add_constraint(vec![(0, 3.0), (1, 2.0)], Le, 18.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn minimize_with_ge() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 → 9 at (4? ...)
        // optimum: put everything on the cheaper x: x=4,y=0 → 8
        let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 4.0);
        lp.add_constraint(vec![(0, 1.0)], Ge, 1.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 8.0);
        assert_close(s.x[0], 4.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x − y = 1 → x=3, y=2
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Eq, 5.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], Eq, 1.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 5.0);
        assert_close(s.x[0], 3.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_constraint(vec![(0, 1.0)], Ge, 5.0);
        lp.add_constraint(vec![(0, 1.0)], Le, 3.0);
        assert_eq!(solve_lp(&lp), Err(SolverError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::maximize(vec![1.0, 0.0]);
        lp.add_constraint(vec![(1, 1.0)], Le, 1.0);
        assert_eq!(solve_lp(&lp), Err(SolverError::Unbounded));
    }

    #[test]
    fn variable_upper_bounds_respected() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.set_bounds(0, 0.0, 2.5);
        lp.set_bounds(1, 1.0, 4.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 6.5);
        assert_close(s.x[0], 2.5);
        assert_close(s.x[1], 4.0);
    }

    #[test]
    fn lower_bound_shift() {
        // min x s.t. x ≥ -10 with lo = -10: optimum at -10
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.set_bounds(0, -10.0, f64::INFINITY);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, -10.0);
    }

    #[test]
    fn mirrored_variable() {
        // max x with x ≤ 7 only (lo = −∞): optimum 7
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.set_bounds(0, f64::NEG_INFINITY, 7.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 7.0);
    }

    #[test]
    fn free_variable_split() {
        // min x + y s.t. x + y ≥ −3, x free, y ≥ 0 → −3
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.set_bounds(0, f64::NEG_INFINITY, f64::INFINITY);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, -3.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, -3.0);
    }

    #[test]
    fn negative_rhs_handled() {
        // max −x s.t. −x ≥ −4 (i.e. x ≤ 4), x ≥ 2 → −2 at x = 2
        let mut lp = LinearProgram::maximize(vec![-1.0]);
        lp.add_constraint(vec![(0, -1.0)], Ge, -4.0);
        lp.add_constraint(vec![(0, 1.0)], Ge, 2.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, -2.0);
        assert_close(s.x[0], 2.0);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // classic degenerate example; Bland's rule must terminate
        let mut lp = LinearProgram::maximize(vec![0.75, -150.0, 0.02, -6.0]);
        lp.add_constraint(vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)], Le, 0.0);
        lp.add_constraint(vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)], Le, 0.0);
        lp.add_constraint(vec![(2, 1.0)], Le, 1.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 0.05);
    }

    #[test]
    fn solution_is_feasible_for_model() {
        let mut lp = LinearProgram::maximize(vec![5.0, 4.0, 3.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 3.0), (2, 1.0)], Le, 5.0);
        lp.add_constraint(vec![(0, 4.0), (1, 1.0), (2, 2.0)], Le, 11.0);
        lp.add_constraint(vec![(0, 3.0), (1, 4.0), (2, 2.0)], Le, 8.0);
        let s = solve_lp(&lp).unwrap();
        assert!(lp.is_feasible(&s.x, 1e-6));
        assert_close(s.objective, 13.0);
    }

    #[test]
    fn warm_start_matches_cold_across_a_chain() {
        // A chain of LPs differing only in objective and rhs — the
        // group-by shape. Warm must agree with cold at every step.
        let mut warm: Option<WarmStart> = None;
        for step in 0..6 {
            let shift = f64::from(step);
            let mut lp = LinearProgram::maximize(vec![3.0 + shift, 5.0 - 0.3 * shift]);
            lp.add_constraint(vec![(0, 1.0)], Le, 4.0 + shift);
            lp.add_constraint(vec![(1, 2.0)], Le, 12.0);
            lp.add_constraint(vec![(0, 3.0), (1, 2.0)], Le, 18.0 + shift);
            let cold = solve_lp(&lp).unwrap();
            let (hot, next) = solve_lp_warm(&lp, warm.as_ref()).unwrap();
            assert!(
                (cold.objective - hot.objective).abs() < 1e-6,
                "step {step}: cold {} vs warm {}",
                cold.objective,
                hot.objective
            );
            warm = Some(next);
        }
    }

    #[test]
    fn warm_start_shape_mismatch_falls_back() {
        let mut small = LinearProgram::maximize(vec![1.0]);
        small.add_constraint(vec![(0, 1.0)], Le, 5.0);
        let (_, warm) = solve_lp_warm(&small, None).unwrap();

        // different variable and row counts: the stale basis must be
        // ignored, not crash or corrupt the solve
        let mut big = LinearProgram::maximize(vec![3.0, 5.0]);
        big.add_constraint(vec![(0, 1.0)], Le, 4.0);
        big.add_constraint(vec![(1, 2.0)], Le, 12.0);
        big.add_constraint(vec![(0, 3.0), (1, 2.0)], Le, 18.0);
        let (s, _) = solve_lp_warm(&big, Some(&warm)).unwrap();
        assert_close(s.objective, 36.0);
    }

    #[test]
    fn warm_start_with_ge_rows_skips_phase_one_when_feasible() {
        let build = |rhs: f64| {
            let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
            lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, rhs);
            lp.add_constraint(vec![(0, 1.0)], Ge, 1.0);
            lp
        };
        let (first, warm) = solve_lp_warm(&build(4.0), None).unwrap();
        assert_close(first.objective, 8.0);
        // nearby rhs: the old optimal basis is still feasible
        let (second, _) = solve_lp_warm(&build(5.0), Some(&warm)).unwrap();
        assert_close(second.objective, 10.0);
        // infeasible-for-the-old-basis jump must still solve correctly
        let (third, _) = solve_lp_warm(&build(0.5), Some(&warm)).unwrap();
        assert_close(third.objective, 2.0);
    }

    #[test]
    fn warm_start_from_redundant_row_basis_stays_sound() {
        // LP1 has a duplicated Eq row, so its optimal basis keeps an
        // artificial basic at zero on the redundant row. LP2 has the same
        // shape but independent rows: a naive crash that accepts the basic
        // artificial lets phase 2 grow it and report an infeasible
        // objective (3 instead of the true optimum 1). The warm solve must
        // match the cold solve exactly.
        let mut lp1 = LinearProgram::maximize(vec![0.0, 0.0, 1.0]);
        lp1.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Eq, 3.0);
        lp1.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Eq, 3.0);
        let (s1, warm) = solve_lp_warm(&lp1, None).unwrap();
        assert_close(s1.objective, 3.0);

        let mut lp2 = LinearProgram::maximize(vec![0.0, 0.0, 1.0]);
        lp2.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Eq, 3.0);
        lp2.add_constraint(vec![(0, 1.0), (1, 2.0), (2, -1.0)], Eq, 3.0);
        let cold = solve_lp(&lp2).unwrap();
        assert_close(cold.objective, 1.0);
        let (hot, _) = solve_lp_warm(&lp2, Some(&warm)).unwrap();
        assert_close(hot.objective, 1.0);
        assert!(
            lp2.is_feasible(&hot.x, 1e-6),
            "warm solution must satisfy LP2"
        );

        // and a genuinely redundant successor may still reuse the basis
        let (again, _) = solve_lp_warm(&lp1, Some(&warm)).unwrap();
        assert_close(again.objective, 3.0);
    }

    #[test]
    fn fec_shape_lp() {
        // The fractional-edge-cover LP for the triangle query:
        // min c1 + c2 + c3 s.t. each attribute covered:
        //  a: c1 + c3 ≥ 1, b: c1 + c2 ≥ 1, c: c2 + c3 ≥ 1 → all 0.5, sum 1.5
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0), (2, 1.0)], Ge, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 1.0);
        lp.add_constraint(vec![(1, 1.0), (2, 1.0)], Ge, 1.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 1.5);
    }

    // ------------------------------------------------------------------
    // Tableau carry (tier 3)
    // ------------------------------------------------------------------

    /// A Ge-bearing allocation-shaped LP (floors force a real phase 1).
    fn ge_lp() -> LinearProgram {
        let mut lp = LinearProgram::maximize(vec![5.0, 4.0, 3.0, 6.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Ge, 2.0);
        lp.add_constraint(vec![(0, 2.0), (1, 3.0), (2, 1.0), (3, 2.0)], Le, 9.5);
        lp.add_constraint(vec![(0, 4.0), (1, 1.0), (2, 2.0)], Le, 10.5);
        lp.add_constraint(vec![(1, 1.0), (2, 4.0), (3, 3.0)], Le, 8.5);
        for i in 0..4 {
            lp.set_bounds(i, 0.0, 4.0);
        }
        lp
    }

    /// Cold-solve `lp` with `var`'s bounds tightened — the oracle a
    /// carried child must match.
    fn cold_child(lp: &LinearProgram, var: usize, bound: BranchBound) -> Result<f64, SolverError> {
        let mut lp = lp.clone();
        let (lo, hi) = lp.bounds[var];
        match bound {
            BranchBound::Upper(h) => lp.set_bounds(var, lo, hi.min(h)),
            BranchBound::Lower(l) => lp.set_bounds(var, lo.max(l), hi),
        }
        solve_lp(&lp).map(|s| s.objective)
    }

    #[test]
    fn child_carry_matches_cold() {
        let lp = ge_lp();
        let (root, ct) = solve_lp_tableau(&lp, None, None).unwrap();
        assert!(ct.stats().rebuilt);
        let parent = Arc::new(ct);
        for (var, bound) in [
            (0, BranchBound::Upper(1.0)),
            (0, BranchBound::Lower(2.0)),
            (1, BranchBound::Upper(0.0)),
            (3, BranchBound::Lower(3.0)), // infeasible child (row 3 caps x3)
        ] {
            let want = cold_child(&lp, var, bound);
            match (
                CanonicalTableau::solve_child(Arc::clone(&parent), var, bound),
                want,
            ) {
                (ChildSolve::Solved { solution, tableau }, Ok(want)) => {
                    assert!(
                        (solution.objective - want).abs() < 1e-6,
                        "{var}/{bound:?}: carried {} vs cold {want}",
                        solution.objective
                    );
                    assert!(!tableau.stats().rebuilt);
                    // carried bound must be enforced on the recovered x
                    match bound {
                        BranchBound::Upper(h) => assert!(solution.x[var] <= h + 1e-6),
                        BranchBound::Lower(l) => assert!(solution.x[var] >= l - 1e-6),
                    }
                    // a child optimum never beats its parent relaxation
                    assert!(want <= root.objective + 1e-6);
                }
                (ChildSolve::Infeasible { .. }, Err(SolverError::Infeasible)) => {}
                (got, want) => panic!("{var}/{bound:?}: carried {got:?} vs cold {want:?}"),
            }
        }
    }

    #[test]
    fn deep_child_chain_matches_cold_and_grows_headroom() {
        // Branch the same program COL_HEADROOM + 4 times: exercises the
        // spare-column headroom *and* the re-stride growth path.
        let mut lp = LinearProgram::maximize(vec![3.0, 2.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Ge, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 2.0), (2, 3.0)], Le, 30.0);
        let (_, ct) = solve_lp_tableau(&lp, None, None).unwrap();
        let mut parent = Arc::new(ct);
        let mut oracle = lp.clone();
        for step in 0..(COL_HEADROOM + 4) {
            let var = step % 3;
            // alternate shrinking upper bounds so every row is non-redundant
            let (lo, hi) = oracle.bounds[var];
            let h = if hi.is_finite() {
                hi - 0.5
            } else {
                9.0 - step as f64 * 0.25
            };
            if h < lo {
                break;
            }
            oracle.set_bounds(var, lo, h);
            let want = solve_lp(&oracle).unwrap().objective;
            match CanonicalTableau::solve_child(parent, var, BranchBound::Upper(h)) {
                ChildSolve::Solved { solution, tableau } => {
                    assert!(
                        (solution.objective - want).abs() < 1e-6,
                        "step {step}: carried {} vs cold {want}",
                        solution.objective
                    );
                    parent = Arc::new(tableau);
                }
                other => panic!("step {step}: expected Solved, got {other:?}"),
            }
        }
    }

    #[test]
    fn child_carry_detects_infeasibility() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 3.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Le, 5.0);
        let (_, ct) = solve_lp_tableau(&lp, None, None).unwrap();
        // x0 ≤ 1 then x1 ≤ 1 leaves Σ ≤ 2 < 3: infeasible
        let parent = Arc::new(ct);
        let ChildSolve::Solved { tableau, .. } =
            CanonicalTableau::solve_child(parent, 0, BranchBound::Upper(1.0))
        else {
            panic!("first cut still feasible");
        };
        match CanonicalTableau::solve_child(Arc::new(tableau), 1, BranchBound::Upper(1.0)) {
            ChildSolve::Infeasible { .. } => {}
            other => panic!("expected Infeasible, got {other:?}"),
        }
        // oracle agrees
        let mut oracle = lp;
        oracle.set_bounds(0, 0.0, 1.0);
        oracle.set_bounds(1, 0.0, 1.0);
        assert_eq!(solve_lp(&oracle), Err(SolverError::Infeasible));
    }

    #[test]
    fn objective_carry_reuses_tableau_without_rebuild() {
        // Same constraints, changing objective — the AVG-probe shape.
        let lp = ge_lp();
        let (_, mut ct) = solve_lp_tableau(&lp, None, None).unwrap();
        for step in 1..6 {
            let r = f64::from(step) * 0.7;
            let mut probe = lp.clone();
            probe.objective = vec![5.0 - r, 4.0 - r, 3.0 - r, 6.0 - r];
            let want = solve_lp(&probe).unwrap().objective;
            let (got, next) = solve_lp_tableau(&probe, Some(ct), None).unwrap();
            assert!(
                (got.objective - want).abs() < 1e-6,
                "step {step}: carried {} vs cold {want}",
                got.objective
            );
            assert!(!next.stats().rebuilt, "step {step} must carry, not rebuild");
            ct = next;
        }
    }

    #[test]
    fn objective_carry_handles_sense_flip() {
        let lp = ge_lp();
        let (_, ct) = solve_lp_tableau(&lp, None, None).unwrap();
        let mut min = lp.clone();
        min.sense = Sense::Minimize;
        let want = solve_lp(&min).unwrap().objective;
        let (got, next) = solve_lp_tableau(&min, Some(ct), None).unwrap();
        assert!((got.objective - want).abs() < 1e-6);
        assert!(!next.stats().rebuilt);
    }

    #[test]
    fn mismatched_prior_demotes_to_basis_then_cold() {
        let lp = ge_lp();
        // a different rhs on one row used to force a rebuild; it is now a
        // one-row delta the adapt tier absorbs — still the oracle's result
        let (_, ct) = solve_lp_tableau(&lp, None, None).unwrap();
        let mut other = lp.clone();
        other.constraints[1].rhs = 7.5;
        let want = solve_lp(&other).unwrap().objective;
        let (got, next) = solve_lp_tableau(&other, Some(ct), None).unwrap();
        assert!((got.objective - want).abs() < 1e-6);
        assert!(!next.stats().rebuilt, "a one-row rhs change now adapts");

        // changed variable bounds remain a genuine mismatch: demote to
        // the basis crash (or cold) and re-solve correctly
        let (_, ct) = solve_lp_tableau(&lp, None, None).unwrap();
        let mut rebound = lp.clone();
        rebound.set_bounds(2, 0.0, 2.0);
        let want = solve_lp(&rebound).unwrap().objective;
        let (got, next) = solve_lp_tableau(&rebound, Some(ct), None).unwrap();
        assert!((got.objective - want).abs() < 1e-6);
        assert!(next.stats().rebuilt, "a bounds mismatch must rebuild");
    }

    #[test]
    fn prior_adapts_to_appended_row_without_rebuild() {
        // One trailing Le row more — the serving epoch's add-constraint
        // shape. The prior must absorb it (append + dual restore), match
        // the cold oracle, and come back as a first-class prior.
        let lp = ge_lp();
        let (_, ct) = solve_lp_tableau(&lp, None, None).unwrap();
        let mut grown = lp.clone();
        grown.add_constraint(vec![(0, 1.0), (3, 1.0)], Le, 5.5);
        let want = solve_lp(&grown).unwrap().objective;
        let (got, next) = solve_lp_tableau(&grown, Some(ct), None).unwrap();
        assert_close(got.objective, want);
        assert!(!next.stats().rebuilt, "one appended row must adapt");

        // the adapted tableau re-prices a follow-up objective exactly
        let mut probe = grown.clone();
        probe.objective = vec![1.0, 2.0, 3.0, 4.0];
        let want2 = solve_lp(&probe).unwrap().objective;
        let (got2, next2) = solve_lp_tableau(&probe, Some(next), None).unwrap();
        assert_close(got2.objective, want2);
        assert!(!next2.stats().rebuilt);
    }

    #[test]
    fn prior_adapts_to_deleted_rows_without_rebuild() {
        // Deleting a middle Le row and, separately, the Ge row (whose
        // surplus column carries the −1 sign) — the retire-constraint
        // shape. Both must adapt in place and match the cold oracle.
        let lp = ge_lp();
        for gone in [0usize, 2] {
            let (_, ct) = solve_lp_tableau(&lp, None, None).unwrap();
            let mut shrunk = lp.clone();
            shrunk.constraints.remove(gone);
            let want = solve_lp(&shrunk).unwrap().objective;
            let (got, next) = solve_lp_tableau(&shrunk, Some(ct), None).unwrap();
            assert_close(got.objective, want);
            assert!(!next.stats().rebuilt, "deleting row {gone} must adapt");
        }
    }

    #[test]
    fn prior_adapts_to_replaced_row_without_rebuild() {
        // delete + insert at one position — the replace_constraint shape
        let lp = ge_lp();
        let (_, ct) = solve_lp_tableau(&lp, None, None).unwrap();
        let mut swapped = lp.clone();
        swapped.constraints[1] = Constraint {
            terms: vec![(0, 1.0), (1, 2.0), (3, 1.0)],
            op: Le,
            rhs: 7.0,
        };
        let want = solve_lp(&swapped).unwrap().objective;
        let (got, next) = solve_lp_tableau(&swapped, Some(ct), None).unwrap();
        assert_close(got.objective, want);
        assert!(!next.stats().rebuilt, "a one-row swap must adapt");
    }

    #[test]
    fn oversized_delta_demotes_to_rebuild() {
        let lp = ge_lp();
        let (_, ct) = solve_lp_tableau(&lp, None, None).unwrap();
        let mut other = lp.clone();
        for k in 0..(ADAPT_MAX_DELTA + 1) {
            other.add_constraint(vec![(0, 1.0), (1, 1.0 + k as f64)], Le, 20.0 + k as f64);
        }
        let want = solve_lp(&other).unwrap().objective;
        let (got, next) = solve_lp_tableau(&other, Some(ct), None).unwrap();
        assert_close(got.objective, want);
        assert!(next.stats().rebuilt, "a 5-row delta must rebuild");
    }

    #[test]
    fn endless_churn_hits_the_adapt_refresh() {
        // alternately appending and deleting one row keeps every step
        // within the delta ceiling, but the streak limit must force a
        // periodic rebuild so drift/dead columns cannot grow forever
        let lp0 = ge_lp();
        let (_, first) = solve_lp_tableau(&lp0, None, None).unwrap();
        let mut ct = first;
        let mut lp = lp0.clone();
        let mut rebuilds = 0;
        for step in 0..40 {
            if step % 2 == 0 {
                lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Le, 12.0 + step as f64);
            } else {
                lp.constraints.pop();
            }
            let want = solve_lp(&lp).unwrap().objective;
            let (got, next) = solve_lp_tableau(&lp, Some(ct), None).unwrap();
            assert_close(got.objective, want);
            if next.stats().rebuilt {
                rebuilds += 1;
            }
            ct = next;
        }
        assert!(
            rebuilds >= 1,
            "40 churn steps must cross ADAPT_REFRESH_LIMIT at least once"
        );
        assert!(
            rebuilds <= 5,
            "the refresh must stay periodic, not per-step ({rebuilds} rebuilds)"
        );
    }

    #[test]
    fn eq_row_delta_demotes_to_rebuild() {
        let lp = ge_lp();
        let (_, ct) = solve_lp_tableau(&lp, None, None).unwrap();
        let mut other = lp.clone();
        other.add_constraint(vec![(0, 1.0), (1, 1.0)], Eq, 2.5);
        let want = solve_lp(&other).unwrap().objective;
        let (got, next) = solve_lp_tableau(&other, Some(ct), None).unwrap();
        assert_close(got.objective, want);
        assert!(next.stats().rebuilt, "an Eq insert cannot adapt");
    }

    #[test]
    fn adapted_infeasible_program_still_detected() {
        // Appending a row that makes the program infeasible: the adapt
        // path must not mask it (it discards the prior and lets the cold
        // oracle decide).
        let lp = ge_lp();
        let (_, ct) = solve_lp_tableau(&lp, None, None).unwrap();
        let mut dead = lp.clone();
        dead.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Le, 1.0); // vs Ge 2.0
        assert_eq!(solve_lp(&dead), Err(SolverError::Infeasible));
        assert_eq!(
            solve_lp_tableau(&dead, Some(ct), None).map(|(s, _)| s),
            Err(SolverError::Infeasible)
        );
    }

    #[test]
    fn branch_row_gc_keeps_row_count_flat() {
        // Repeatedly tightening the same variable's upper bound must not
        // grow the tableau: each new cut retires the row it dominates.
        let mut lp = LinearProgram::maximize(vec![3.0, 2.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 2.0)], Le, 20.0);
        let (_, ct) = solve_lp_tableau(&lp, None, None).unwrap();
        let root_rows = ct.tab.m;
        let mut parent = Arc::new(ct);
        let mut oracle = lp.clone();
        for step in 0..6 {
            let h = 8.0 - step as f64;
            oracle.set_bounds(0, 0.0, h);
            let want = solve_lp(&oracle).unwrap().objective;
            match CanonicalTableau::solve_child(parent, 0, BranchBound::Upper(h)) {
                ChildSolve::Solved { solution, tableau } => {
                    assert_close(solution.objective, want);
                    assert!(
                        tableau.tab.m <= root_rows + 1,
                        "step {step}: dominated rows must be retired, m = {}",
                        tableau.tab.m
                    );
                    parent = Arc::new(tableau);
                }
                other => panic!("step {step}: {other:?}"),
            }
        }
    }

    #[test]
    fn carried_tableau_counts_fewer_pivots_than_rebuild() {
        // The O(m) → O(1) claim, measured: a carried child must pivot
        // strictly less than the basis-restore path (rebuild + crash) on
        // a Ge-bearing program.
        let lp = ge_lp();
        let (_, ct) = solve_lp_tableau(&lp, None, None).unwrap();
        let basis = ct.warm_start();
        let parent = Arc::new(ct);
        let ChildSolve::Solved { tableau, .. } =
            CanonicalTableau::solve_child(parent, 0, BranchBound::Upper(1.0))
        else {
            panic!("child solvable");
        };
        let carried_pivots = tableau.stats().pivots;

        let mut child = lp.clone();
        child.set_bounds(0, 0.0, 1.0);
        let (_, rebuilt) = solve_lp_tableau(&child, None, Some(&basis)).unwrap();
        assert!(rebuilt.stats().rebuilt);
        assert!(
            carried_pivots < rebuilt.stats().pivots,
            "carried {} pivots vs rebuilt {}",
            carried_pivots,
            rebuilt.stats().pivots
        );
    }
}
