//! Dense two-phase primal simplex with warm starts.
//!
//! The solver accepts the general [`LinearProgram`] model (arbitrary
//! variable bounds, ≤ / ≥ / = rows, maximize or minimize) and reduces it to
//! standard form `max cᵀy, Ay = b, y ≥ 0, b ≥ 0` by shifting, mirroring, or
//! splitting variables and adding slack/surplus/artificial columns. Phase 1
//! drives artificial variables to zero (or proves infeasibility); phase 2
//! optimizes the real objective. Bland's rule is used throughout, which
//! guarantees termination at the cost of some speed — the right trade-off
//! for a bounding engine where correctness is the product.
//!
//! [`solve_lp_warm`] additionally accepts the final basis of a previous,
//! structurally similar solve (a [`WarmStart`]). If that basis can be
//! pivoted into the fresh tableau and is primal-feasible there, phase 1 is
//! skipped entirely and phase 2 starts next to the old optimum — the
//! payoff when a GROUP-BY loop solves a chain of LPs that differ only in
//! a few coefficients. Any incompatibility (shape mismatch, singular
//! pivot, infeasible basis) silently falls back to the cold two-phase
//! path, so warm starting never affects the result, only the work.

use crate::{ConstraintOp, LinearProgram, Sense, SolverError};

/// Numeric tolerance for pivoting and feasibility decisions.
const TOL: f64 = 1e-9;

/// An optimal LP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value (in the original sense).
    pub objective: f64,
    /// Optimal assignment for the original variables.
    pub x: Vec<f64>,
}

/// How an original variable is represented in standard form.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = y_col + lo` with `y ≥ 0`.
    Shifted { col: usize, lo: f64 },
    /// `x = hi − y_col` with `y ≥ 0` (used when only an upper bound is
    /// finite).
    Mirrored { col: usize, hi: f64 },
    /// `x = y_pos − y_neg`, both `≥ 0` (free variable).
    Split { pos: usize, neg: usize },
}

/// Standard-form row: dense coefficients over structural columns.
struct StdRow {
    coefs: Vec<f64>,
    op: ConstraintOp,
    rhs: f64,
}

/// An optimal basis carried from one solve to the next.
///
/// Opaque: obtained from [`solve_lp_warm`] and only meaningful for a
/// later program that standardizes to the same tableau shape (same row
/// count, same structural + slack column count). Mismatches are detected
/// and degrade to a cold solve.
#[derive(Debug, Clone)]
pub struct WarmStart {
    /// Basis column of each tableau row.
    basis: Vec<usize>,
    /// Structural + slack column count the basis refers to.
    real_cols: usize,
}

/// Solve a linear program with the two-phase simplex method.
pub fn solve_lp(lp: &LinearProgram) -> Result<LpSolution, SolverError> {
    solve_lp_warm(lp, None).map(|(solution, _)| solution)
}

/// Solve, optionally warm-starting from a previous solve's [`WarmStart`],
/// and return this solve's final basis for the next one in the chain.
pub fn solve_lp_warm(
    lp: &LinearProgram,
    warm: Option<&WarmStart>,
) -> Result<(LpSolution, WarmStart), SolverError> {
    lp.validate()?;
    let n = lp.num_vars();

    // --- 1. Map variables into non-negative standard-form columns. -------
    let mut maps = Vec::with_capacity(n);
    let mut ncols = 0usize;
    for &(lo, hi) in &lp.bounds {
        let m = if lo.is_finite() {
            let col = ncols;
            ncols += 1;
            VarMap::Shifted { col, lo }
        } else if hi.is_finite() {
            let col = ncols;
            ncols += 1;
            VarMap::Mirrored { col, hi }
        } else {
            let pos = ncols;
            let neg = ncols + 1;
            ncols += 2;
            VarMap::Split { pos, neg }
        };
        maps.push(m);
    }

    // Standard-form objective (always maximize internally).
    let sign = match lp.sense {
        Sense::Maximize => 1.0,
        Sense::Minimize => -1.0,
    };
    let mut c = vec![0.0; ncols];
    let mut obj_const = 0.0;
    for (i, &ci) in lp.objective.iter().enumerate() {
        let ci = ci * sign;
        match maps[i] {
            VarMap::Shifted { col, lo } => {
                c[col] += ci;
                obj_const += ci * lo;
            }
            VarMap::Mirrored { col, hi } => {
                c[col] -= ci;
                obj_const += ci * hi;
            }
            VarMap::Split { pos, neg } => {
                c[pos] += ci;
                c[neg] -= ci;
            }
        }
    }

    // --- 2. Translate constraints (and finite upper bounds) to rows. -----
    let mut rows: Vec<StdRow> = Vec::with_capacity(lp.constraints.len() + n);
    for cons in &lp.constraints {
        let mut coefs = vec![0.0; ncols];
        let mut rhs = cons.rhs;
        for &(var, coef) in &cons.terms {
            match maps[var] {
                VarMap::Shifted { col, lo } => {
                    coefs[col] += coef;
                    rhs -= coef * lo;
                }
                VarMap::Mirrored { col, hi } => {
                    coefs[col] -= coef;
                    rhs -= coef * hi;
                }
                VarMap::Split { pos, neg } => {
                    coefs[pos] += coef;
                    coefs[neg] -= coef;
                }
            }
        }
        rows.push(StdRow {
            coefs,
            op: cons.op,
            rhs,
        });
    }
    // Bounds not absorbed by the shift become explicit rows.
    for (i, &(lo, hi)) in lp.bounds.iter().enumerate() {
        match maps[i] {
            VarMap::Shifted { col, lo: shift } if hi.is_finite() => {
                let mut coefs = vec![0.0; ncols];
                coefs[col] = 1.0;
                rows.push(StdRow {
                    coefs,
                    op: ConstraintOp::Le,
                    rhs: hi - shift,
                });
            }
            VarMap::Split { pos, neg } => {
                // Free variable: both bounds infinite, nothing to add.
                debug_assert!(!lo.is_finite() && !hi.is_finite());
                let _ = (pos, neg);
            }
            _ => {}
        }
    }

    // --- 3. Build the simplex tableau with slacks and artificials. -------
    let m = rows.len();
    // Columns: structural | slack/surplus | artificial | rhs
    let mut n_slack = 0;
    for r in &rows {
        if !matches!(r.op, ConstraintOp::Eq) {
            n_slack += 1;
        }
    }
    let real_cols = ncols + n_slack;
    let total = real_cols + m; // upper bound on artificial count
    let width = total + 1;
    let build_tableau = || -> (Tableau, Vec<usize>) {
        let mut a = vec![0.0; m * width];
        let mut basis = vec![usize::MAX; m];
        let mut slack_at = ncols;
        let mut art_at = real_cols;
        let mut artificials = Vec::new();

        for (r, row) in rows.iter().enumerate() {
            let (mut coefs, mut rhs) = (row.coefs.clone(), row.rhs);
            let mut op = row.op;
            if rhs < 0.0 {
                for v in &mut coefs {
                    *v = -*v;
                }
                rhs = -rhs;
                op = match op {
                    ConstraintOp::Le => ConstraintOp::Ge,
                    ConstraintOp::Ge => ConstraintOp::Le,
                    ConstraintOp::Eq => ConstraintOp::Eq,
                };
            }
            for (j, &v) in coefs.iter().enumerate() {
                a[r * width + j] = v;
            }
            a[r * width + total] = rhs;
            match op {
                ConstraintOp::Le => {
                    a[r * width + slack_at] = 1.0;
                    basis[r] = slack_at;
                    slack_at += 1;
                }
                ConstraintOp::Ge => {
                    a[r * width + slack_at] = -1.0;
                    slack_at += 1;
                    a[r * width + art_at] = 1.0;
                    basis[r] = art_at;
                    artificials.push(art_at);
                    art_at += 1;
                }
                ConstraintOp::Eq => {
                    a[r * width + art_at] = 1.0;
                    basis[r] = art_at;
                    artificials.push(art_at);
                    art_at += 1;
                }
            }
        }
        (
            Tableau {
                a,
                basis,
                m,
                total,
                width,
                blocked: Vec::new(),
            },
            artificials,
        )
    };

    // --- 4a. Warm path: pivot the previous basis into a copy of the fresh
    // tableau and skip phase 1 if it can be made primal-feasible. The
    // pristine build is kept so a failed crash falls through to the cold
    // path without re-standardizing.
    //
    // A crashed basis that is *not* primal-feasible can still pay — but
    // only when the cold alternative is expensive, i.e. the LP has Ge/Eq
    // rows whose artificials force a real phase 1. That is exactly the
    // branch & bound child shape: the parent's *optimal* basis revisited
    // after one variable bound tightened keeps its reduced costs ≤ 0
    // (costs unchanged), so a few dual simplex pivots restore
    // feasibility. For an all-Le program the slack basis is feasible for
    // free, a cold start pays no phase 1, and both the crash and a
    // dual restore of a stale chain basis (whose dual feasibility a *new
    // objective* voids anyway) are pure overhead — so there the warm
    // basis is only used when it crashes in primal-feasible as-is. ---------
    let (pristine, pristine_artificials) = build_tableau();
    // Phase-2 cost vector, built early: the dual restore prices entering
    // columns against it.
    let mut cost = vec![0.0; total];
    cost[..ncols].copy_from_slice(&c);
    let mut warmed: Option<Tableau> = None;
    if let Some(w) = warm {
        if w.real_cols == real_cols && w.basis.len() == m {
            let phase1_is_costly = !pristine_artificials.is_empty();
            let mut tab = pristine.clone();
            let artificials = pristine_artificials.clone();
            if crash_basis(&mut tab, &w.basis, real_cols) {
                // Freeze artificial columns at zero exactly as a phase-1
                // exit would (keeping the unit column of any artificial
                // that stayed basic on a redundant row).
                for &j in &artificials {
                    for r in 0..tab.m {
                        if tab.basis[r] != j {
                            tab.set(r, j, 0.0);
                        }
                    }
                }
                tab.blocked = artificials;
                if tab.primal_feasible() || (phase1_is_costly && tab.dual_restore(&cost)) {
                    warmed = Some(tab);
                }
            }
        }
    }

    // --- 4b. Cold path: phase 1 drives artificials out. -------------------
    let mut tab = match warmed {
        Some(tab) => tab,
        None => {
            let (mut tab, artificials) = (pristine, pristine_artificials);
            if !artificials.is_empty() {
                let mut cost = vec![0.0; total];
                for &j in &artificials {
                    cost[j] = -1.0;
                }
                let value = tab.optimize(&cost)?;
                if value < -1e-7 {
                    return Err(SolverError::Infeasible);
                }
                // Pivot any artificial still in the basis out (degenerate
                // rows), or verify its value is zero.
                for r in 0..tab.m {
                    if artificials.contains(&tab.basis[r]) {
                        let pivot_col = (0..real_cols)
                            .find(|&j| tab.at(r, j).abs() > TOL && !artificials.contains(&j));
                        if let Some(j) = pivot_col {
                            tab.pivot(r, j);
                        } else {
                            // Row is all-zero over real columns: redundant.
                            debug_assert!(tab.rhs(r).abs() <= 1e-7);
                        }
                    }
                }
                // Freeze artificial columns at zero so phase 2 never
                // re-enters them.
                for &j in &artificials {
                    for r in 0..tab.m {
                        if tab.basis[r] != j {
                            tab.set(r, j, 0.0);
                        }
                    }
                }
                tab.blocked = artificials;
            }
            tab
        }
    };

    // --- 5. Phase 2: the real objective. ----------------------------------
    let value = tab.optimize(&cost)?;

    // --- 6. Recover the original variables. -------------------------------
    let mut y = vec![0.0; total];
    for r in 0..tab.m {
        y[tab.basis[r]] = tab.rhs(r);
    }
    let mut x = vec![0.0; n];
    for (i, map) in maps.iter().enumerate() {
        x[i] = match *map {
            VarMap::Shifted { col, lo } => y[col] + lo,
            VarMap::Mirrored { col, hi } => hi - y[col],
            VarMap::Split { pos, neg } => y[pos] - y[neg],
        };
    }
    let objective = (value + obj_const) * sign;
    let next_warm = WarmStart {
        basis: tab.basis.clone(),
        real_cols,
    };
    Ok((LpSolution { objective, x }, next_warm))
}

/// Pivot `basis[r]` into row `r` for every row. Returns `true` only if
/// every pivot element is usable and any artificial-basic rows are sound
/// (see below) — the caller then decides whether the basic solution is
/// primal-feasible as-is or needs a dual restore first. A basis entry in
/// the artificial range is allowed when it is that row's own artificial
/// (a redundant row whose artificial stayed basic at zero in the previous
/// solve); the row is left on its fresh artificial, and soundness then
/// requires its value to be ~0 with no live real coefficients. On `false`
/// the tableau is garbage and must be rebuilt.
fn crash_basis(tab: &mut Tableau, basis: &[usize], real_cols: usize) -> bool {
    let m = tab.m;
    let mut assigned = vec![false; m];
    let mut art_row = vec![false; m];
    // Rows the previous solve left on an artificial (redundant rows):
    // acceptable only on the row owning that artificial in the fresh
    // tableau (identical construction order ⇒ identical column), where
    // there is nothing to pivot.
    for r in 0..m {
        if basis[r] >= real_cols {
            if tab.basis[r] != basis[r] {
                return false;
            }
            assigned[r] = true;
            art_row[r] = true;
        }
    }
    // Eliminate each structural/slack basis column with free row choice
    // (partial pivoting): the row labels of a basis are arbitrary, and the
    // fresh tableau may have a zero exactly where the old tableau had the
    // unit — only nonsingularity matters.
    for &j in basis {
        if j >= real_cols {
            continue;
        }
        let row = (0..m).filter(|&r| !assigned[r]).max_by(|&a, &b| {
            tab.at(a, j)
                .abs()
                .partial_cmp(&tab.at(b, j).abs())
                .expect("no NaN in tableau")
        });
        let Some(row) = row else {
            return false;
        };
        if tab.at(row, j).abs() <= TOL {
            return false;
        }
        tab.pivot(row, j);
        assigned[row] = true;
    }
    (0..m).all(|r| {
        if art_row[r] {
            // A basic artificial is only sound if its row is redundant in
            // *this* LP too: zero rhs AND all-zero over the real columns.
            // Such a row can never change again (every future pivot
            // multiplier against it is one of those zeros), so the
            // artificial provably stays at 0. A merely-zero rhs is NOT
            // enough — phase 2 could later grow the artificial through a
            // negative entry in the entering column (its row skips the
            // ratio test) and report an infeasible "optimum".
            tab.rhs(r).abs() <= 1e-7 && (0..real_cols).all(|j| tab.at(r, j).abs() <= 1e-7)
        } else {
            // Negative rhs here is *recoverable* (dual restore), not a
            // reason to scrap the crash.
            true
        }
    })
}

/// Dense row-major simplex tableau in canonical form (basis columns are
/// unit vectors).
#[derive(Clone)]
struct Tableau {
    a: Vec<f64>,
    basis: Vec<usize>,
    m: usize,
    total: usize,
    width: usize,
    /// Artificial columns frozen after phase 1; never re-enter the basis.
    blocked: Vec<usize>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, j: usize) -> f64 {
        self.a[r * self.width + j]
    }

    #[inline]
    fn set(&mut self, r: usize, j: usize, v: f64) {
        self.a[r * self.width + j] = v;
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.a[r * self.width + self.total]
    }

    /// Gauss-pivot on `(row, col)` and update the basis.
    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.width;
        let p = self.at(row, col);
        debug_assert!(p.abs() > TOL, "pivot on (near-)zero element");
        let inv = 1.0 / p;
        for j in 0..w {
            self.a[row * w + j] *= inv;
        }
        for r in 0..self.m {
            if r == row {
                continue;
            }
            let f = self.at(r, col);
            if f == 0.0 {
                continue;
            }
            for j in 0..w {
                let v = self.a[row * w + j];
                self.a[r * w + j] -= f * v;
            }
        }
        self.basis[row] = col;
    }

    /// All basic values non-negative (within the feasibility tolerance)?
    fn primal_feasible(&self) -> bool {
        (0..self.m).all(|r| self.rhs(r) >= -1e-7)
    }

    /// Dual simplex pivots from a (near-)dual-feasible basis: repeatedly
    /// pivot the most negative basic value out, entering the column that
    /// keeps reduced costs non-positive (min ratio `dⱼ / a_rⱼ` over
    /// `a_rⱼ < 0`, index tie-break). This is the warm-start workhorse for
    /// branch & bound: a parent-optimal basis stays dual-feasible after a
    /// child tightens one variable bound, so feasibility comes back in a
    /// handful of pivots instead of a cold phase 1.
    ///
    /// Returns `true` when primal feasibility was restored. `false` —
    /// no entering column (the child LP is likely infeasible, but the
    /// cold path is the arbiter of that) or the iteration cap — means
    /// "give up, rebuild cold"; correctness never depends on this
    /// succeeding, because the caller always follows with the primal
    /// [`Tableau::optimize`] from a feasible basis or a cold rebuild.
    fn dual_restore(&mut self, cost: &[f64]) -> bool {
        let iter_limit = 100 + 10 * (self.m + self.total);
        for _ in 0..iter_limit {
            // Leaving row: most negative basic value.
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.m {
                let v = self.rhs(r);
                if v < -1e-7 && leave.is_none_or(|(_, worst)| v < worst) {
                    leave = Some((r, v));
                }
            }
            let Some((row, _)) = leave else {
                return true;
            };
            // Entering column: among negative entries of the leaving row,
            // the one whose reduced cost-to-entry ratio is smallest keeps
            // d ≤ 0 everywhere after the pivot.
            let mut enter: Option<(usize, f64)> = None;
            for j in 0..self.total {
                if self.blocked.contains(&j) {
                    continue;
                }
                let arj = self.at(row, j);
                if arj < -TOL {
                    let mut d = cost[j];
                    for r2 in 0..self.m {
                        let cb = cost[self.basis[r2]];
                        if cb != 0.0 {
                            d -= cb * self.at(r2, j);
                        }
                    }
                    let ratio = d / arj;
                    let better = match enter {
                        None => true,
                        Some((_, best)) => ratio < best - TOL,
                    };
                    if better {
                        enter = Some((j, ratio));
                    }
                }
            }
            let Some((col, _)) = enter else {
                return false;
            };
            self.pivot(row, col);
        }
        false
    }

    /// Maximize `cost · y` from the current basic feasible solution.
    /// Returns the optimal objective value. Uses Bland's rule.
    fn optimize(&mut self, cost: &[f64]) -> Result<f64, SolverError> {
        let iter_limit = 200 + 50 * (self.m + self.total);
        for _ in 0..iter_limit {
            // Reduced costs: c_j − c_B · B⁻¹A_j (computed from the
            // canonical tableau).
            let mut entering = None;
            for j in 0..self.total {
                if self.blocked.contains(&j) {
                    continue;
                }
                let mut red = cost[j];
                for r in 0..self.m {
                    let cb = cost[self.basis[r]];
                    if cb != 0.0 {
                        red -= cb * self.at(r, j);
                    }
                }
                if red > TOL {
                    entering = Some(j);
                    break; // Bland: smallest index
                }
            }
            let Some(col) = entering else {
                // Optimal: objective = c_B · x_B
                let mut v = 0.0;
                for r in 0..self.m {
                    v += cost[self.basis[r]] * self.rhs(r);
                }
                return Ok(v);
            };
            // Ratio test, Bland tie-break on basis variable index.
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..self.m {
                let arj = self.at(r, col);
                if arj > TOL {
                    let ratio = self.rhs(r) / arj;
                    match leave {
                        None => leave = Some((r, ratio)),
                        Some((lr, lratio)) => {
                            if ratio < lratio - TOL
                                || ((ratio - lratio).abs() <= TOL && self.basis[r] < self.basis[lr])
                            {
                                leave = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((row, _)) = leave else {
                return Err(SolverError::Unbounded);
            };
            self.pivot(row, col);
        }
        Err(SolverError::LimitExceeded(iter_limit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintOp::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_max() {
        // max 3x + 5y s.t. x ≤ 4, 2y ≤ 12, 3x + 2y ≤ 18  → 36 at (2, 6)
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
        lp.add_constraint(vec![(0, 1.0)], Le, 4.0);
        lp.add_constraint(vec![(1, 2.0)], Le, 12.0);
        lp.add_constraint(vec![(0, 3.0), (1, 2.0)], Le, 18.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn minimize_with_ge() {
        // min 2x + 3y s.t. x + y ≥ 4, x ≥ 1 → 9 at (4? ...)
        // optimum: put everything on the cheaper x: x=4,y=0 → 8
        let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 4.0);
        lp.add_constraint(vec![(0, 1.0)], Ge, 1.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 8.0);
        assert_close(s.x[0], 4.0);
    }

    #[test]
    fn equality_constraints() {
        // max x + y s.t. x + y = 5, x − y = 1 → x=3, y=2
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Eq, 5.0);
        lp.add_constraint(vec![(0, 1.0), (1, -1.0)], Eq, 1.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 5.0);
        assert_close(s.x[0], 3.0);
        assert_close(s.x[1], 2.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_constraint(vec![(0, 1.0)], Ge, 5.0);
        lp.add_constraint(vec![(0, 1.0)], Le, 3.0);
        assert_eq!(solve_lp(&lp), Err(SolverError::Infeasible));
    }

    #[test]
    fn unbounded_detected() {
        let mut lp = LinearProgram::maximize(vec![1.0, 0.0]);
        lp.add_constraint(vec![(1, 1.0)], Le, 1.0);
        assert_eq!(solve_lp(&lp), Err(SolverError::Unbounded));
    }

    #[test]
    fn variable_upper_bounds_respected() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.set_bounds(0, 0.0, 2.5);
        lp.set_bounds(1, 1.0, 4.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 6.5);
        assert_close(s.x[0], 2.5);
        assert_close(s.x[1], 4.0);
    }

    #[test]
    fn lower_bound_shift() {
        // min x s.t. x ≥ -10 with lo = -10: optimum at -10
        let mut lp = LinearProgram::minimize(vec![1.0]);
        lp.set_bounds(0, -10.0, f64::INFINITY);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, -10.0);
    }

    #[test]
    fn mirrored_variable() {
        // max x with x ≤ 7 only (lo = −∞): optimum 7
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.set_bounds(0, f64::NEG_INFINITY, 7.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 7.0);
    }

    #[test]
    fn free_variable_split() {
        // min x + y s.t. x + y ≥ −3, x free, y ≥ 0 → −3
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.set_bounds(0, f64::NEG_INFINITY, f64::INFINITY);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, -3.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, -3.0);
    }

    #[test]
    fn negative_rhs_handled() {
        // max −x s.t. −x ≥ −4 (i.e. x ≤ 4), x ≥ 2 → −2 at x = 2
        let mut lp = LinearProgram::maximize(vec![-1.0]);
        lp.add_constraint(vec![(0, -1.0)], Ge, -4.0);
        lp.add_constraint(vec![(0, 1.0)], Ge, 2.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, -2.0);
        assert_close(s.x[0], 2.0);
    }

    #[test]
    fn degenerate_does_not_cycle() {
        // classic degenerate example; Bland's rule must terminate
        let mut lp = LinearProgram::maximize(vec![0.75, -150.0, 0.02, -6.0]);
        lp.add_constraint(vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)], Le, 0.0);
        lp.add_constraint(vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)], Le, 0.0);
        lp.add_constraint(vec![(2, 1.0)], Le, 1.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 0.05);
    }

    #[test]
    fn solution_is_feasible_for_model() {
        let mut lp = LinearProgram::maximize(vec![5.0, 4.0, 3.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 3.0), (2, 1.0)], Le, 5.0);
        lp.add_constraint(vec![(0, 4.0), (1, 1.0), (2, 2.0)], Le, 11.0);
        lp.add_constraint(vec![(0, 3.0), (1, 4.0), (2, 2.0)], Le, 8.0);
        let s = solve_lp(&lp).unwrap();
        assert!(lp.is_feasible(&s.x, 1e-6));
        assert_close(s.objective, 13.0);
    }

    #[test]
    fn warm_start_matches_cold_across_a_chain() {
        // A chain of LPs differing only in objective and rhs — the
        // group-by shape. Warm must agree with cold at every step.
        let mut warm: Option<WarmStart> = None;
        for step in 0..6 {
            let shift = f64::from(step);
            let mut lp = LinearProgram::maximize(vec![3.0 + shift, 5.0 - 0.3 * shift]);
            lp.add_constraint(vec![(0, 1.0)], Le, 4.0 + shift);
            lp.add_constraint(vec![(1, 2.0)], Le, 12.0);
            lp.add_constraint(vec![(0, 3.0), (1, 2.0)], Le, 18.0 + shift);
            let cold = solve_lp(&lp).unwrap();
            let (hot, next) = solve_lp_warm(&lp, warm.as_ref()).unwrap();
            assert!(
                (cold.objective - hot.objective).abs() < 1e-6,
                "step {step}: cold {} vs warm {}",
                cold.objective,
                hot.objective
            );
            warm = Some(next);
        }
    }

    #[test]
    fn warm_start_shape_mismatch_falls_back() {
        let mut small = LinearProgram::maximize(vec![1.0]);
        small.add_constraint(vec![(0, 1.0)], Le, 5.0);
        let (_, warm) = solve_lp_warm(&small, None).unwrap();

        // different variable and row counts: the stale basis must be
        // ignored, not crash or corrupt the solve
        let mut big = LinearProgram::maximize(vec![3.0, 5.0]);
        big.add_constraint(vec![(0, 1.0)], Le, 4.0);
        big.add_constraint(vec![(1, 2.0)], Le, 12.0);
        big.add_constraint(vec![(0, 3.0), (1, 2.0)], Le, 18.0);
        let (s, _) = solve_lp_warm(&big, Some(&warm)).unwrap();
        assert_close(s.objective, 36.0);
    }

    #[test]
    fn warm_start_with_ge_rows_skips_phase_one_when_feasible() {
        let build = |rhs: f64| {
            let mut lp = LinearProgram::minimize(vec![2.0, 3.0]);
            lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, rhs);
            lp.add_constraint(vec![(0, 1.0)], Ge, 1.0);
            lp
        };
        let (first, warm) = solve_lp_warm(&build(4.0), None).unwrap();
        assert_close(first.objective, 8.0);
        // nearby rhs: the old optimal basis is still feasible
        let (second, _) = solve_lp_warm(&build(5.0), Some(&warm)).unwrap();
        assert_close(second.objective, 10.0);
        // infeasible-for-the-old-basis jump must still solve correctly
        let (third, _) = solve_lp_warm(&build(0.5), Some(&warm)).unwrap();
        assert_close(third.objective, 2.0);
    }

    #[test]
    fn warm_start_from_redundant_row_basis_stays_sound() {
        // LP1 has a duplicated Eq row, so its optimal basis keeps an
        // artificial basic at zero on the redundant row. LP2 has the same
        // shape but independent rows: a naive crash that accepts the basic
        // artificial lets phase 2 grow it and report an infeasible
        // objective (3 instead of the true optimum 1). The warm solve must
        // match the cold solve exactly.
        let mut lp1 = LinearProgram::maximize(vec![0.0, 0.0, 1.0]);
        lp1.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Eq, 3.0);
        lp1.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Eq, 3.0);
        let (s1, warm) = solve_lp_warm(&lp1, None).unwrap();
        assert_close(s1.objective, 3.0);

        let mut lp2 = LinearProgram::maximize(vec![0.0, 0.0, 1.0]);
        lp2.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Eq, 3.0);
        lp2.add_constraint(vec![(0, 1.0), (1, 2.0), (2, -1.0)], Eq, 3.0);
        let cold = solve_lp(&lp2).unwrap();
        assert_close(cold.objective, 1.0);
        let (hot, _) = solve_lp_warm(&lp2, Some(&warm)).unwrap();
        assert_close(hot.objective, 1.0);
        assert!(
            lp2.is_feasible(&hot.x, 1e-6),
            "warm solution must satisfy LP2"
        );

        // and a genuinely redundant successor may still reuse the basis
        let (again, _) = solve_lp_warm(&lp1, Some(&warm)).unwrap();
        assert_close(again.objective, 3.0);
    }

    #[test]
    fn fec_shape_lp() {
        // The fractional-edge-cover LP for the triangle query:
        // min c1 + c2 + c3 s.t. each attribute covered:
        //  a: c1 + c3 ≥ 1, b: c1 + c2 ≥ 1, c: c2 + c3 ≥ 1 → all 0.5, sum 1.5
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0), (2, 1.0)], Ge, 1.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 1.0);
        lp.add_constraint(vec![(1, 1.0), (2, 1.0)], Ge, 1.0);
        let s = solve_lp(&lp).unwrap();
        assert_close(s.objective, 1.5);
    }
}
