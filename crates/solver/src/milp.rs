//! Branch & bound mixed-integer linear programming — warm-started and
//! parallel.
//!
//! The PC bounding problem (§4.2 of the paper) requires *integer* row
//! allocations per cell. We solve it by branch & bound over the LP
//! relaxation: at each node solve the relaxation; if the optimum is
//! integral we have a candidate, otherwise branch on the most fractional
//! variable with `x ≤ ⌊v⌋` and `x ≥ ⌈v⌉` children. Nodes whose relaxation
//! bound cannot beat the incumbent are pruned.
//!
//! Two engine-level optimizations ride on that classic skeleton:
//!
//! * **Warm starts down the tree** ([`MilpOptions::warm_start`]): a child
//!   node's LP differs from its parent's by a single tightened variable
//!   bound, so the parent's optimal simplex basis is threaded into
//!   [`solve_lp_warm`] — when the basis is still primal-feasible, phase 1
//!   is skipped entirely and phase 2 re-optimizes from next door. Basis
//!   incompatibility (e.g. a down-branch materializing a new bound row)
//!   silently degrades to a cold solve, so warm starting never changes
//!   results, only work.
//! * **Parallel search** ([`MilpOptions::threads`]): children are explored
//!   as stealable tasks on the work-stealing pool (`rayon::join`), the
//!   branch nearer the relaxation running hot on the current worker and
//!   the far branch exposed for stealing. The incumbent objective is
//!   shared through an [`AtomicU64`] (bit-cast `f64`) read lock-free at
//!   every prune test, so a bound proven on one worker prunes subtrees on
//!   all of them. The full incumbent updates under a mutex with
//!   deterministic tie-breaking — among the incumbents actually offered,
//!   equal objectives resolve to the lexicographically smaller solution
//!   vector rather than to whichever worker got there first. (Which
//!   optima are *offered* can still vary: a subtree tying the incumbent
//!   within the pruning tolerance may be pruned in one schedule and
//!   explored in another, so the returned `x` — and the objective, by at
//!   most that tolerance — can differ run to run.) Every mode proves an
//!   optimal objective up to the 1e-6 pruning tolerance; `threads: 1`
//!   additionally fixes the exact node visit order (the classic DFS
//!   stack).

use crate::simplex::{solve_lp_warm, WarmStart};
use crate::{Sense, SolverError};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Tolerance within which a value counts as integral.
const INT_TOL: f64 = 1e-6;

/// Objective difference below which two incumbents count as tied (and the
/// lexicographically smaller solution vector wins).
const TIE_TOL: f64 = 1e-12;

/// Parallel recursion depth past which a subtree switches to the
/// explicit-stack sequential search, bounding native stack growth on
/// pathological branching chains.
const PAR_DEPTH_LIMIT: usize = 64;

/// A mixed-integer program: a [`LinearProgram`](crate::LinearProgram)
/// plus integrality flags.
#[derive(Debug, Clone)]
pub struct MilpProblem {
    /// The relaxation.
    pub lp: crate::LinearProgram,
    /// `integer[i]` marks variable `i` as integral.
    pub integer: Vec<bool>,
}

impl MilpProblem {
    /// A problem where *all* variables are integers (the PC allocation
    /// case).
    pub fn all_integer(lp: crate::LinearProgram) -> Self {
        let n = lp.num_vars();
        MilpProblem {
            lp,
            integer: vec![true; n],
        }
    }
}

/// Knobs for the branch & bound search.
#[derive(Debug, Clone, Copy)]
pub struct MilpOptions {
    /// Maximum number of branch & bound nodes to explore.
    pub node_limit: usize,
    /// If true, return the best incumbent when the node limit is reached
    /// instead of an error (the bound is then *approximate but feasible*).
    pub best_effort: bool,
    /// Worker threads for the search: `1` (the default) runs the
    /// deterministic sequential DFS; `0` or `≥ 2` explores children as
    /// stealable tasks on the global work-stealing pool (the pool's size,
    /// not this number, decides actual concurrency). Objective and
    /// feasibility are identical in every mode.
    pub threads: usize,
    /// Thread each node's parent simplex basis into the child relaxation
    /// (on by default). Never affects results, only work.
    pub warm_start: bool,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            node_limit: 50_000,
            best_effort: false,
            threads: 1,
            warm_start: true,
        }
    }
}

/// An optimal (or best-effort) MILP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// Objective value at the returned point.
    pub objective: f64,
    /// Variable assignment (integral on the flagged variables).
    pub x: Vec<f64>,
    /// Whether optimality was proven (false only with
    /// [`MilpOptions::best_effort`] hitting the node limit).
    pub proven_optimal: bool,
    /// Number of branch & bound nodes explored.
    pub nodes: usize,
}

/// One node's accumulated bound overrides: `(var, lo, hi)` entries applied
/// on top of the root LP.
type Overrides = Vec<(usize, f64, f64)>;

/// Solve a MILP by branch & bound.
pub fn solve_milp(
    problem: &MilpProblem,
    options: MilpOptions,
) -> Result<MilpSolution, SolverError> {
    if problem.integer.len() != problem.lp.num_vars() {
        return Err(SolverError::BadModel(
            "integrality flags length must equal variable count".into(),
        ));
    }
    // Node warm starts pay when a cold node solve has a real phase 1 —
    // i.e. some row standardizes with an artificial (Ge/Eq, or a Le whose
    // negative rhs flips). An all-Le program starts feasible on its slack
    // basis for free, so there the crash-and-restore machinery is pure
    // per-node overhead; skip it. (Branching only tightens variable
    // bounds, so the verdict holds for every node of the tree.)
    let phase1_is_real = problem.lp.constraints.iter().any(|c| match c.op {
        crate::ConstraintOp::Ge | crate::ConstraintOp::Eq => true,
        crate::ConstraintOp::Le => c.rhs < 0.0,
    });
    let options = MilpOptions {
        warm_start: options.warm_start && phase1_is_real,
        ..options
    };
    let search = Search::new(problem, options);
    if options.threads == 1 {
        search.run_stack(Vec::new(), None);
    } else {
        search.run_parallel(Vec::new(), None, 0);
    }
    search.finish()
}

/// Shared state of one branch & bound search, readable from every worker.
struct Search<'a> {
    problem: &'a MilpProblem,
    options: MilpOptions,
    maximizing: bool,
    /// Best incumbent objective, bit-cast, for lock-free prune tests.
    /// Initialized to the sense's identity (−∞ / +∞) so "no incumbent"
    /// never prunes.
    best_bits: AtomicU64,
    /// The full incumbent `(objective, x)`; tie-broken deterministically.
    incumbent: Mutex<Option<(f64, Vec<f64>)>>,
    nodes: AtomicUsize,
    limit_hit: AtomicBool,
    failed: AtomicBool,
    error: Mutex<Option<SolverError>>,
}

impl<'a> Search<'a> {
    fn new(problem: &'a MilpProblem, options: MilpOptions) -> Self {
        let maximizing = problem.lp.sense == Sense::Maximize;
        let identity = if maximizing {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
        Search {
            problem,
            options,
            maximizing,
            best_bits: AtomicU64::new(identity.to_bits()),
            incumbent: Mutex::new(None),
            nodes: AtomicUsize::new(0),
            limit_hit: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
        }
    }

    /// Claim the right to process one node, or flag the limit.
    fn try_claim_node(&self) -> bool {
        loop {
            let n = self.nodes.load(Ordering::SeqCst);
            if n >= self.options.node_limit {
                self.limit_hit.store(true, Ordering::SeqCst);
                return false;
            }
            if self
                .nodes
                .compare_exchange(n, n + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
    }

    fn record_error(&self, e: SolverError) {
        let mut slot = self.error.lock().unwrap();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.failed.store(true, Ordering::SeqCst);
    }

    fn aborted(&self) -> bool {
        self.failed.load(Ordering::SeqCst)
    }

    fn best(&self) -> f64 {
        f64::from_bits(self.best_bits.load(Ordering::Acquire))
    }

    /// `a` strictly better than `b` in the optimization direction.
    fn better(&self, a: f64, b: f64) -> bool {
        if self.maximizing {
            a > b
        } else {
            a < b
        }
    }

    /// Install `(obj, x)` as the incumbent if it beats the current one —
    /// or ties it with a lexicographically smaller `x` (the deterministic
    /// tie-break that makes the reported solution independent of worker
    /// scheduling).
    fn offer_incumbent(&self, obj: f64, x: Vec<f64>) {
        let mut slot = self.incumbent.lock().unwrap();
        let replace = match &*slot {
            None => true,
            Some((best, best_x)) => {
                if self.better(obj, *best) {
                    true
                } else {
                    (obj - best).abs() <= TIE_TOL && lex_less(&x, best_x)
                }
            }
        };
        if replace {
            self.best_bits.store(obj.to_bits(), Ordering::Release);
            *slot = Some((obj, x));
        }
    }

    /// Solve one (already claimed) node. Returns branch instructions —
    /// `(variable, fractional value, this node's basis)` — or `None` when
    /// the node was pruned, infeasible, integral, or errored.
    fn process_node(
        &self,
        overrides: &Overrides,
        warm: Option<&WarmStart>,
    ) -> Option<(usize, f64, Option<WarmStart>)> {
        let mut lp = self.problem.lp.clone();
        for &(var, lo, hi) in overrides {
            let (cur_lo, cur_hi) = lp.bounds[var];
            let new_lo = cur_lo.max(lo);
            let new_hi = cur_hi.min(hi);
            if new_lo > new_hi {
                return None;
            }
            lp.set_bounds(var, new_lo, new_hi);
        }

        let warm = if self.options.warm_start { warm } else { None };
        let (relax, basis) = match solve_lp_warm(&lp, warm) {
            Ok(solved) => solved,
            Err(SolverError::Infeasible) => return None,
            Err(e) => {
                self.record_error(e);
                return None;
            }
        };

        // Prune by bound against the (possibly slightly stale) shared
        // incumbent: staleness can only delay a prune, never cause one.
        let best = self.best();
        let bound = relax.objective;
        let no_better = if self.maximizing {
            bound <= best + INT_TOL
        } else {
            bound >= best - INT_TOL
        };
        if no_better {
            return None;
        }

        // Find the most fractional integral variable.
        let mut branch_var = None;
        let mut worst_frac = INT_TOL;
        for (i, (&is_int, &v)) in self.problem.integer.iter().zip(&relax.x).enumerate() {
            if !is_int {
                continue;
            }
            let frac = (v - v.round()).abs();
            if frac > worst_frac {
                worst_frac = frac;
                branch_var = Some((i, v));
            }
        }

        match branch_var {
            None => {
                // Integral (within tolerance): round and offer as incumbent.
                let mut x = relax.x;
                for (i, &is_int) in self.problem.integer.iter().enumerate() {
                    if is_int {
                        x[i] = x[i].round();
                    }
                }
                let obj = self.problem.lp.objective_at(&x);
                if self.problem.lp.is_feasible(&x, 1e-5) {
                    self.offer_incumbent(obj, x);
                }
                None
            }
            Some((var, v)) => Some((var, v, self.options.warm_start.then_some(basis))),
        }
    }

    /// The two children of a branch, `(near, far)`: the rounding direction
    /// closer to the relaxation first — better incumbents earlier, more
    /// pruning.
    fn children(overrides: Overrides, var: usize, v: f64) -> (Overrides, Overrides) {
        let mut down = overrides.clone();
        down.push((var, f64::NEG_INFINITY, v.floor()));
        let mut up = overrides;
        up.push((var, v.ceil(), f64::INFINITY));
        if v - v.floor() > 0.5 {
            (up, down)
        } else {
            (down, up)
        }
    }

    /// Deterministic sequential DFS with an explicit stack (the near child
    /// is pushed last, so it pops first — the pre-parallel visit order).
    fn run_stack(&self, overrides: Overrides, warm: Option<Arc<WarmStart>>) {
        let mut stack: Vec<(Overrides, Option<Arc<WarmStart>>)> = vec![(overrides, warm)];
        while let Some((overrides, warm)) = stack.pop() {
            if self.aborted() || !self.try_claim_node() {
                return;
            }
            if let Some((var, v, basis)) = self.process_node(&overrides, warm.as_deref()) {
                let basis = basis.map(Arc::new);
                let (near, far) = Self::children(overrides, var, v);
                stack.push((far, basis.clone()));
                stack.push((near, basis));
            }
        }
    }

    /// Parallel exploration: the near child runs hot on this worker, the
    /// far child becomes a stealable task. Deep chains fall back to the
    /// stack search to bound recursion.
    fn run_parallel(&self, overrides: Overrides, warm: Option<Arc<WarmStart>>, depth: usize) {
        if depth >= PAR_DEPTH_LIMIT {
            return self.run_stack(overrides, warm);
        }
        if self.aborted() || !self.try_claim_node() {
            return;
        }
        let Some((var, v, basis)) = self.process_node(&overrides, warm.as_deref()) else {
            return;
        };
        let basis = basis.map(Arc::new);
        let (near, far) = Self::children(overrides, var, v);
        let far_basis = basis.clone();
        rayon::join(
            || self.run_parallel(near, basis, depth + 1),
            || self.run_parallel(far, far_basis, depth + 1),
        );
    }

    fn finish(self) -> Result<MilpSolution, SolverError> {
        if let Some(e) = self.error.into_inner().unwrap() {
            return Err(e);
        }
        let nodes = self.nodes.into_inner();
        let incumbent = self.incumbent.into_inner().unwrap();
        if self.limit_hit.into_inner() {
            if self.options.best_effort {
                if let Some((objective, x)) = incumbent {
                    return Ok(MilpSolution {
                        objective,
                        x,
                        proven_optimal: false,
                        nodes,
                    });
                }
            }
            return Err(SolverError::LimitExceeded(self.options.node_limit));
        }
        match incumbent {
            Some((objective, x)) => Ok(MilpSolution {
                objective,
                x,
                proven_optimal: true,
                nodes,
            }),
            None => Err(SolverError::Infeasible),
        }
    }
}

/// Strict lexicographic order on solution vectors (`total_cmp`, so ties
/// resolve identically on every platform and schedule).
fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintOp::*;
    use crate::LinearProgram;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// Every (threads, warm_start) combination the engine supports.
    fn all_modes() -> [MilpOptions; 4] {
        let base = MilpOptions::default();
        [
            MilpOptions {
                threads: 1,
                warm_start: false,
                ..base
            },
            MilpOptions {
                threads: 1,
                warm_start: true,
                ..base
            },
            MilpOptions {
                threads: 0,
                warm_start: false,
                ..base
            },
            MilpOptions {
                threads: 0,
                warm_start: true,
                ..base
            },
        ]
    }

    #[test]
    fn knapsack() {
        // max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d ≤ 14, binary → 21 (b,c,d)
        let mut lp = LinearProgram::maximize(vec![8.0, 11.0, 6.0, 4.0]);
        lp.add_constraint(vec![(0, 5.0), (1, 7.0), (2, 4.0), (3, 3.0)], Le, 14.0);
        for i in 0..4 {
            lp.set_bounds(i, 0.0, 1.0);
        }
        for options in all_modes() {
            let sol = solve_milp(&MilpProblem::all_integer(lp.clone()), options).unwrap();
            assert_close(sol.objective, 21.0);
            assert!(sol.proven_optimal);
            assert_eq!(
                sol.x.iter().map(|v| v.round() as i64).collect::<Vec<_>>(),
                vec![0, 1, 1, 1],
                "{options:?}"
            );
        }
    }

    #[test]
    fn lp_relaxation_would_be_fractional() {
        // max x + y s.t. 2x + 2y ≤ 3, integers → 1 (relaxation gives 1.5)
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], Le, 3.0);
        let sol = solve_milp(&MilpProblem::all_integer(lp), MilpOptions::default()).unwrap();
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn maximal_independent_set_reduction() {
        // §4.3 of the paper: a path graph v1 - v2 - v3.
        // Vertex vars x1,x2,x3 ∈ {0,1}; edge constraints x1+x2 ≤ 1,
        // x2+x3 ≤ 1. Max independent set = {v1, v3} → 2.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Le, 1.0);
        lp.add_constraint(vec![(1, 1.0), (2, 1.0)], Le, 1.0);
        for i in 0..3 {
            lp.set_bounds(i, 0.0, 1.0);
        }
        let sol = solve_milp(&MilpProblem::all_integer(lp), MilpOptions::default()).unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn paper_overlapping_example() {
        // §4.4: cells c1 (t1∧t2) and c2 (¬t1∧t2);
        // t1: 50 ≤ x1 ≤ 100, t2: 75 ≤ x1 + x2 ≤ 125,
        // max 129.99·x1 + 149.99·x2 = 50·129.99 + 75·149.99 = 17748.75
        let mut lp = LinearProgram::maximize(vec![129.99, 149.99]);
        lp.add_constraint(vec![(0, 1.0)], Ge, 50.0);
        lp.add_constraint(vec![(0, 1.0)], Le, 100.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 75.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Le, 125.0);
        for options in all_modes() {
            let sol = solve_milp(&MilpProblem::all_integer(lp.clone()), options).unwrap();
            assert_close(sol.objective, 50.0 * 129.99 + 75.0 * 149.99);
            assert_close(sol.x[0], 50.0);
            assert_close(sol.x[1], 75.0);
        }
    }

    #[test]
    fn minimization() {
        // min x + y s.t. x + y ≥ 3.5, integers → 4
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 3.5);
        for options in all_modes() {
            let sol = solve_milp(&MilpProblem::all_integer(lp.clone()), options).unwrap();
            assert_close(sol.objective, 4.0);
        }
    }

    #[test]
    fn mixed_integrality() {
        // max 2x + y, x ≤ 1.5, x + y ≤ 2.5, only x integral
        // → x = 1, y = 1.5 → 3.5
        let mut lp = LinearProgram::maximize(vec![2.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0)], Le, 1.5);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Le, 2.5);
        let problem = MilpProblem {
            lp,
            integer: vec![true, false],
        };
        let sol = solve_milp(&problem, MilpOptions::default()).unwrap();
        assert_close(sol.objective, 3.5);
        assert_close(sol.x[0], 1.0);
        assert_close(sol.x[1], 1.5);
    }

    #[test]
    fn infeasible_integer_hole() {
        // 0.4 ≤ x ≤ 0.6 has no integer point
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.set_bounds(0, 0.4, 0.6);
        for options in all_modes() {
            let r = solve_milp(&MilpProblem::all_integer(lp.clone()), options);
            assert_eq!(r, Err(SolverError::Infeasible));
        }
    }

    #[test]
    fn node_limit_errors_without_best_effort() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], Le, 3.0);
        let r = solve_milp(
            &MilpProblem::all_integer(lp),
            MilpOptions {
                node_limit: 1,
                best_effort: false,
                ..MilpOptions::default()
            },
        );
        assert_eq!(r, Err(SolverError::LimitExceeded(1)));
    }

    #[test]
    fn node_limit_best_effort_returns_incumbent() {
        // enough nodes to find *an* integral point, not enough to prove
        // optimality everywhere: the result must be feasible and flagged
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0, 7.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 3.0), (2, 5.0)], Le, 11.5);
        for i in 0..3 {
            lp.set_bounds(i, 0.0, 3.0);
        }
        let problem = MilpProblem::all_integer(lp.clone());
        let full = solve_milp(&problem, MilpOptions::default()).unwrap();
        let mut clipped = None;
        for limit in 2..20 {
            let r = solve_milp(
                &problem,
                MilpOptions {
                    node_limit: limit,
                    best_effort: true,
                    ..MilpOptions::default()
                },
            );
            if let Ok(sol) = r {
                if !sol.proven_optimal {
                    clipped = Some(sol);
                    break;
                }
            }
        }
        let sol = clipped.expect("some limit clips the search with an incumbent");
        assert!(lp.is_feasible(&sol.x, 1e-5));
        assert!(sol.objective <= full.objective + 1e-6);
    }

    #[test]
    fn warm_start_does_not_change_the_optimum() {
        // a denser problem where warm starts genuinely engage
        let mut lp = LinearProgram::maximize(vec![5.0, 4.0, 3.0, 6.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 3.0), (2, 1.0), (3, 2.0)], Le, 9.5);
        lp.add_constraint(vec![(0, 4.0), (1, 1.0), (2, 2.0)], Le, 10.5);
        lp.add_constraint(vec![(1, 1.0), (2, 4.0), (3, 3.0)], Le, 8.5);
        for i in 0..4 {
            lp.set_bounds(i, 0.0, 4.0);
        }
        let problem = MilpProblem::all_integer(lp);
        let cold = solve_milp(
            &problem,
            MilpOptions {
                warm_start: false,
                ..MilpOptions::default()
            },
        )
        .unwrap();
        let warm = solve_milp(
            &problem,
            MilpOptions {
                warm_start: true,
                ..MilpOptions::default()
            },
        )
        .unwrap();
        assert_close(cold.objective, warm.objective);
        assert!(problem.lp.is_feasible(&warm.x, 1e-5));
    }
}
