//! Branch & bound mixed-integer linear programming.
//!
//! The PC bounding problem (§4.2 of the paper) requires *integer* row
//! allocations per cell. We solve it by depth-first branch & bound over the
//! LP relaxation: at each node solve the relaxation with [`solve_lp`]; if
//! the optimum is integral we have a candidate, otherwise branch on the
//! most fractional variable with `x ≤ ⌊v⌋` and `x ≥ ⌈v⌉` children. Nodes
//! whose relaxation bound cannot beat the incumbent are pruned. Because PC
//! allocation problems have integer constraint data, the relaxation bound
//! is additionally tightened by rounding.

use crate::{simplex::solve_lp, LinearProgram, Sense, SolverError};

/// Tolerance within which a value counts as integral.
const INT_TOL: f64 = 1e-6;

/// A mixed-integer program: a [`LinearProgram`] plus integrality flags.
#[derive(Debug, Clone)]
pub struct MilpProblem {
    /// The relaxation.
    pub lp: LinearProgram,
    /// `integer[i]` marks variable `i` as integral.
    pub integer: Vec<bool>,
}

impl MilpProblem {
    /// A problem where *all* variables are integers (the PC allocation
    /// case).
    pub fn all_integer(lp: LinearProgram) -> Self {
        let n = lp.num_vars();
        MilpProblem {
            lp,
            integer: vec![true; n],
        }
    }
}

/// Knobs for the branch & bound search.
#[derive(Debug, Clone, Copy)]
pub struct MilpOptions {
    /// Maximum number of branch & bound nodes to explore.
    pub node_limit: usize,
    /// If true, return the best incumbent when the node limit is reached
    /// instead of an error (the bound is then *approximate but feasible*).
    pub best_effort: bool,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            node_limit: 50_000,
            best_effort: false,
        }
    }
}

/// An optimal (or best-effort) MILP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// Objective value at the returned point.
    pub objective: f64,
    /// Variable assignment (integral on the flagged variables).
    pub x: Vec<f64>,
    /// Whether optimality was proven (false only with
    /// [`MilpOptions::best_effort`] hitting the node limit).
    pub proven_optimal: bool,
    /// Number of branch & bound nodes explored.
    pub nodes: usize,
}

/// Solve a MILP by branch & bound.
pub fn solve_milp(
    problem: &MilpProblem,
    options: MilpOptions,
) -> Result<MilpSolution, SolverError> {
    if problem.integer.len() != problem.lp.num_vars() {
        return Err(SolverError::BadModel(
            "integrality flags length must equal variable count".into(),
        ));
    }
    let maximizing = problem.lp.sense == Sense::Maximize;
    let mut incumbent: Option<(f64, Vec<f64>)> = None;
    let mut nodes = 0usize;
    // Stack of bound overrides: (var, lo, hi) lists per node.
    let mut stack: Vec<Vec<(usize, f64, f64)>> = vec![Vec::new()];

    while let Some(overrides) = stack.pop() {
        if nodes >= options.node_limit {
            return finish_limit(problem, incumbent, nodes, options);
        }
        nodes += 1;

        let mut lp = problem.lp.clone();
        let mut conflict = false;
        for &(var, lo, hi) in &overrides {
            let (cur_lo, cur_hi) = lp.bounds[var];
            let new_lo = cur_lo.max(lo);
            let new_hi = cur_hi.min(hi);
            if new_lo > new_hi {
                conflict = true;
                break;
            }
            lp.set_bounds(var, new_lo, new_hi);
        }
        if conflict {
            continue;
        }

        let relax = match solve_lp(&lp) {
            Ok(s) => s,
            Err(SolverError::Infeasible) => continue,
            Err(e) => return Err(e),
        };

        // Prune by bound.
        if let Some((best, _)) = &incumbent {
            let bound = relax.objective;
            let no_better = if maximizing {
                bound <= *best + INT_TOL
            } else {
                bound >= *best - INT_TOL
            };
            if no_better {
                continue;
            }
        }

        // Find the most fractional integral variable.
        let mut branch_var = None;
        let mut worst_frac = INT_TOL;
        for (i, (&is_int, &v)) in problem.integer.iter().zip(&relax.x).enumerate() {
            if !is_int {
                continue;
            }
            let frac = (v - v.round()).abs();
            if frac > worst_frac {
                worst_frac = frac;
                branch_var = Some((i, v));
            }
        }

        match branch_var {
            None => {
                // Integral (within tolerance): round and accept as incumbent.
                let mut x = relax.x.clone();
                for (i, &is_int) in problem.integer.iter().enumerate() {
                    if is_int {
                        x[i] = x[i].round();
                    }
                }
                let obj = problem.lp.objective_at(&x);
                let better = match &incumbent {
                    None => true,
                    Some((best, _)) => {
                        if maximizing {
                            obj > *best
                        } else {
                            obj < *best
                        }
                    }
                };
                if better && problem.lp.is_feasible(&x, 1e-5) {
                    incumbent = Some((obj, x));
                }
            }
            Some((var, v)) => {
                let down = {
                    let mut o = overrides.clone();
                    o.push((var, f64::NEG_INFINITY, v.floor()));
                    o
                };
                let up = {
                    let mut o = overrides;
                    o.push((var, v.ceil(), f64::INFINITY));
                    o
                };
                // Explore the rounding direction closer to the relaxation
                // first: better incumbents earlier → more pruning.
                if v - v.floor() > 0.5 {
                    stack.push(down);
                    stack.push(up);
                } else {
                    stack.push(up);
                    stack.push(down);
                }
            }
        }
    }

    match incumbent {
        Some((objective, x)) => Ok(MilpSolution {
            objective,
            x,
            proven_optimal: true,
            nodes,
        }),
        None => Err(SolverError::Infeasible),
    }
}

fn finish_limit(
    problem: &MilpProblem,
    incumbent: Option<(f64, Vec<f64>)>,
    nodes: usize,
    options: MilpOptions,
) -> Result<MilpSolution, SolverError> {
    if options.best_effort {
        if let Some((objective, x)) = incumbent {
            return Ok(MilpSolution {
                objective,
                x,
                proven_optimal: false,
                nodes,
            });
        }
    }
    let _ = problem;
    Err(SolverError::LimitExceeded(options.node_limit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintOp::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn knapsack() {
        // max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d ≤ 14, binary → 21 (b,c,d)
        let mut lp = LinearProgram::maximize(vec![8.0, 11.0, 6.0, 4.0]);
        lp.add_constraint(vec![(0, 5.0), (1, 7.0), (2, 4.0), (3, 3.0)], Le, 14.0);
        for i in 0..4 {
            lp.set_bounds(i, 0.0, 1.0);
        }
        let sol = solve_milp(&MilpProblem::all_integer(lp), MilpOptions::default()).unwrap();
        assert_close(sol.objective, 21.0);
        assert!(sol.proven_optimal);
        assert_eq!(
            sol.x.iter().map(|v| v.round() as i64).collect::<Vec<_>>(),
            vec![0, 1, 1, 1]
        );
    }

    #[test]
    fn lp_relaxation_would_be_fractional() {
        // max x + y s.t. 2x + 2y ≤ 3, integers → 1 (relaxation gives 1.5)
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], Le, 3.0);
        let sol = solve_milp(&MilpProblem::all_integer(lp), MilpOptions::default()).unwrap();
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn maximal_independent_set_reduction() {
        // §4.3 of the paper: a path graph v1 - v2 - v3.
        // Vertex vars x1,x2,x3 ∈ {0,1}; edge constraints x1+x2 ≤ 1,
        // x2+x3 ≤ 1. Max independent set = {v1, v3} → 2.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Le, 1.0);
        lp.add_constraint(vec![(1, 1.0), (2, 1.0)], Le, 1.0);
        for i in 0..3 {
            lp.set_bounds(i, 0.0, 1.0);
        }
        let sol = solve_milp(&MilpProblem::all_integer(lp), MilpOptions::default()).unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn paper_overlapping_example() {
        // §4.4: cells c1 (t1∧t2) and c2 (¬t1∧t2);
        // t1: 50 ≤ x1 ≤ 100, t2: 75 ≤ x1 + x2 ≤ 125,
        // max 129.99·x1 + 149.99·x2 = 50·129.99 + 75·149.99 = 17748.75
        let mut lp = LinearProgram::maximize(vec![129.99, 149.99]);
        lp.add_constraint(vec![(0, 1.0)], Ge, 50.0);
        lp.add_constraint(vec![(0, 1.0)], Le, 100.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 75.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Le, 125.0);
        let sol = solve_milp(&MilpProblem::all_integer(lp), MilpOptions::default()).unwrap();
        assert_close(sol.objective, 50.0 * 129.99 + 75.0 * 149.99);
        assert_close(sol.x[0], 50.0);
        assert_close(sol.x[1], 75.0);
    }

    #[test]
    fn minimization() {
        // min x + y s.t. x + y ≥ 3.5, integers → 4
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 3.5);
        let sol = solve_milp(&MilpProblem::all_integer(lp), MilpOptions::default()).unwrap();
        assert_close(sol.objective, 4.0);
    }

    #[test]
    fn mixed_integrality() {
        // max x + y s.t. x + y ≤ 2.5, only x integral → x=2? no:
        // y continuous can take 0.5, optimum 2.5 regardless; force x's
        // integrality to matter: max 2x + y, x ≤ 1.5 → x = 1, y = 1.5 → 3.5
        let mut lp = LinearProgram::maximize(vec![2.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0)], Le, 1.5);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Le, 2.5);
        let problem = MilpProblem {
            lp,
            integer: vec![true, false],
        };
        let sol = solve_milp(&problem, MilpOptions::default()).unwrap();
        assert_close(sol.objective, 3.5);
        assert_close(sol.x[0], 1.0);
        assert_close(sol.x[1], 1.5);
    }

    #[test]
    fn infeasible_integer_hole() {
        // 0.4 ≤ x ≤ 0.6 has no integer point
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.set_bounds(0, 0.4, 0.6);
        let r = solve_milp(&MilpProblem::all_integer(lp), MilpOptions::default());
        assert_eq!(r, Err(SolverError::Infeasible));
    }

    #[test]
    fn node_limit_errors_without_best_effort() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], Le, 3.0);
        let r = solve_milp(
            &MilpProblem::all_integer(lp),
            MilpOptions {
                node_limit: 1,
                best_effort: false,
            },
        );
        assert_eq!(r, Err(SolverError::LimitExceeded(1)));
    }
}
