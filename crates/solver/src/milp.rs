//! Branch & bound mixed-integer linear programming — warm-started,
//! tableau-carrying, and parallel.
//!
//! The PC bounding problem (§4.2 of the paper) requires *integer* row
//! allocations per cell. We solve it by branch & bound over the LP
//! relaxation: at each node solve the relaxation; if the optimum is
//! integral we have a candidate, otherwise branch on the most fractional
//! variable with `x ≤ ⌊v⌋` and `x ≥ ⌈v⌉` children. Nodes whose relaxation
//! bound cannot beat the incumbent are pruned.
//!
//! # Warm starts down the tree: the three tiers
//!
//! A child node's LP differs from its parent's by a single tightened
//! variable bound, which the engine exploits at three escalating levels:
//!
//! 1. **Cold crash** (`warm_start: false, tableau_carry: false`) — every
//!    node standardizes its LP, builds a tableau, and runs phase 1 from
//!    the slack/artificial basis. The property-tested oracle.
//! 2. **Basis restore** ([`MilpOptions::warm_start`]) — the parent's
//!    optimal simplex *basis* is threaded into
//!    [`solve_lp_tableau`](crate::solve_lp_tableau): the child still
//!    rebuilds its tableau from scratch, then crashes the parent basis
//!    in (O(m) pivots) and dual-restores feasibility, skipping phase 1.
//!    Basis incompatibility silently degrades to a cold solve.
//! 3. **Tableau carry** ([`MilpOptions::tableau_carry`], the default) —
//!    the parent's whole [`CanonicalTableau`] is carried: the child
//!    appends its branch bound as one row, runs a single elimination
//!    pass against the parent-optimal basis, and dual-restores — **O(1)
//!    pivots per node** instead of the O(m) rebuild + crash of tier 2.
//!    Parents hand the tableau to both children through an [`Arc`]
//!    snapshot: the near child (explored first, on the same worker)
//!    clones the core lazily, and the far child — which by then usually
//!    holds the last reference, whether it ran locally or was stolen —
//!    takes it by move. A carried solve that stalls (dual-restore
//!    iteration cap, numerically degenerate re-optimization) falls back
//!    to a fresh rebuild, and every
//!    [`TABLEAU_REFRESH_DEPTH`] consecutive carries the node rebuilds
//!    anyway, bounding floating-point drift down deep chains. Appended
//!    branch rows are garbage-collected on the way down: a cut that
//!    dominates an earlier cut on the same (variable, direction) retires
//!    the superseded row at append time, so a deep descent carries
//!    O(root m + variables) rows rather than one per level — and the
//!    periodic refresh folds the survivors into the node's merged bounds
//!    for free (the rebuild standardizes from bounds, not rows).
//!
//!    Requesting `tableau_carry` while disabling `warm_start` is a
//!    contradiction — the carried tableau *is* the warm start's deeper
//!    tier — and is rejected with [`SolverError::BadModel`] rather than
//!    silently ignored.
//!
//!    Interaction with the all-Le auto-disable: for a program whose rows
//!    are all `≤` with nonnegative rhs, a cold phase 1 is free, so the
//!    *basis-restore* tier is auto-disabled (crash + restore would be
//!    pure overhead). The tableau carry stays active there — the work it
//!    eliminates is the rebuild itself, which exists regardless of
//!    phase-1 cost. (Branching only tightens variable bounds, so the
//!    all-Le verdict holds for every node of the tree.)
//!
//!    Per-node pivot and rebuild counters ([`SearchStats`], on
//!    [`MilpSolution::search`]) make the O(m) → O(1) claim measurable:
//!    `benches/milp.rs` records them next to the wall-clock ablations,
//!    and `tests/prop_milp_carry.rs` asserts carried nodes pivot
//!    strictly less than rebuilt ones on Ge-bearing programs.
//!
//! * **Parallel search** ([`MilpOptions::threads`]): children are explored
//!   as stealable tasks on the work-stealing pool (`rayon::join`), the
//!   branch nearer the relaxation running hot on the current worker and
//!   the far branch exposed for stealing. The incumbent objective is
//!   shared through an [`AtomicU64`] (bit-cast `f64`) read lock-free at
//!   every prune test, so a bound proven on one worker prunes subtrees on
//!   all of them. The full incumbent updates under a mutex with
//!   deterministic tie-breaking — among the incumbents actually offered,
//!   equal objectives resolve to the lexicographically smaller solution
//!   vector rather than to whichever worker got there first. (Which
//!   optima are *offered* can still vary: a subtree tying the incumbent
//!   within the pruning tolerance may be pruned in one schedule and
//!   explored in another, so the returned `x` — and the objective, by at
//!   most that tolerance — can differ run to run.) Every mode proves an
//!   optimal objective up to the 1e-6 pruning tolerance; `threads: 1`
//!   additionally fixes the exact node visit order (the classic DFS
//!   stack).

use crate::simplex::{
    solve_lp_tableau, BranchBound, CanonicalTableau, ChildSolve, SolveStats, WarmStart,
};
use crate::{Sense, SolverError};
use pc_budget::{QueryBudget, TripReason};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Tolerance within which a value counts as integral.
const INT_TOL: f64 = 1e-6;

/// Objective difference below which two incumbents count as tied (and the
/// lexicographically smaller solution vector wins).
const TIE_TOL: f64 = 1e-12;

/// Parallel recursion depth past which a subtree switches to the
/// explicit-stack sequential search, bounding native stack growth on
/// pathological branching chains.
const PAR_DEPTH_LIMIT: usize = 64;

/// Consecutive carried solves after which a node rebuilds its tableau
/// from scratch even though the carry succeeded: each carried child
/// inherits its parent's accumulated floating-point error, and a
/// periodic refactorization bounds the drift at a bounded (and counted —
/// see [`SearchStats::rebuilt_nodes`]) cost.
pub const TABLEAU_REFRESH_DEPTH: u32 = 32;

/// A mixed-integer program: a [`LinearProgram`](crate::LinearProgram)
/// plus integrality flags.
#[derive(Debug, Clone)]
pub struct MilpProblem {
    /// The relaxation.
    pub lp: crate::LinearProgram,
    /// `integer[i]` marks variable `i` as integral.
    pub integer: Vec<bool>,
    /// Optional per-variable branch weights (estimate-guided search
    /// ordering). At a fractional node the search branches on the
    /// variable maximizing `fractionality × weight` instead of raw
    /// fractionality, so callers that know which variables are the most
    /// *selective* (the PC engine scores each cell's allocation variable
    /// by its constraints' box-volume estimates) get those decided first
    /// and prune earlier. `None` — or any all-equal weights — reproduces
    /// the classic most-fractional rule exactly. Weights never affect
    /// the optimum, only the node order; must be finite, positive, and
    /// one per variable.
    pub branch_scores: Option<Vec<f64>>,
}

impl MilpProblem {
    /// A problem where *all* variables are integers (the PC allocation
    /// case).
    pub fn all_integer(lp: crate::LinearProgram) -> Self {
        let n = lp.num_vars();
        MilpProblem {
            lp,
            integer: vec![true; n],
            branch_scores: None,
        }
    }

    /// Attach per-variable branch weights (see
    /// [`MilpProblem::branch_scores`]).
    pub fn with_branch_scores(mut self, scores: Vec<f64>) -> Self {
        self.branch_scores = Some(scores);
        self
    }
}

/// Knobs for the branch & bound search.
#[derive(Debug, Clone, Copy)]
pub struct MilpOptions {
    /// Maximum number of branch & bound nodes to explore.
    pub node_limit: usize,
    /// If true, return the best incumbent when the node limit is reached
    /// instead of an error (the bound is then *approximate but feasible*).
    pub best_effort: bool,
    /// Worker threads for the search: `1` (the default) runs the
    /// deterministic sequential DFS; `0` or `≥ 2` explores children as
    /// stealable tasks on the global work-stealing pool (the pool's size,
    /// not this number, decides actual concurrency). Objective and
    /// feasibility are identical in every mode.
    pub threads: usize,
    /// Thread each node's parent simplex basis into the child relaxation
    /// (on by default; tier 2 of the module docs). Never affects results,
    /// only work. Disabling this while leaving [`MilpOptions::tableau_carry`]
    /// on is rejected as a contradiction — see the module docs.
    pub warm_start: bool,
    /// Carry each node's whole canonical tableau into its children (tier
    /// 3: append the branch bound as one row + dual-restore, O(1) pivots
    /// per node; on by default). Requires [`MilpOptions::warm_start`].
    /// Never affects results, only work.
    pub tableau_carry: bool,
}

impl Default for MilpOptions {
    fn default() -> Self {
        MilpOptions {
            node_limit: 50_000,
            best_effort: false,
            threads: 1,
            warm_start: true,
            tableau_carry: true,
        }
    }
}

/// Work counters of one branch & bound search — the honest-measurement
/// side of the warm-start tiers. "Carried" nodes were answered from the
/// parent's canonical tableau (tier 3); "rebuilt" nodes standardized and
/// built a tableau from scratch (tiers 1/2, including the root, carry
/// stalls, and periodic refreshes). Nodes pruned before any LP solve
/// (inconsistent branch bounds) appear in neither.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes whose relaxation was solved on a carried tableau.
    pub carried_nodes: u64,
    /// Nodes whose relaxation rebuilt a tableau from scratch.
    pub rebuilt_nodes: u64,
    /// Simplex pivots spent in carried node solves.
    pub carried_pivots: u64,
    /// Simplex pivots spent in rebuilt node solves (crash + phase 1 +
    /// dual restore + phase 2).
    pub rebuilt_pivots: u64,
    /// Incumbent installs (improvements or tie-break replacements) made
    /// by a **near** child — the branch direction the best-first child
    /// order explores first. A high ratio of hits to installs means the
    /// child order is doing its job: incumbents arrive on the first
    /// descent, and the far siblings are pruned instead of searched.
    pub incumbent_first_hits: u64,
}

impl SearchStats {
    /// Total simplex pivots across the search.
    pub fn pivots(&self) -> u64 {
        self.carried_pivots + self.rebuilt_pivots
    }
}

/// An optimal (or best-effort) MILP solution.
#[derive(Debug, Clone, PartialEq)]
pub struct MilpSolution {
    /// Objective value at the returned point.
    pub objective: f64,
    /// Variable assignment (integral on the flagged variables).
    pub x: Vec<f64>,
    /// Whether optimality was proven (false only with
    /// [`MilpOptions::best_effort`] hitting the node limit).
    pub proven_optimal: bool,
    /// Number of branch & bound nodes explored.
    pub nodes: usize,
    /// Per-node pivot/rebuild counters (see [`SearchStats`]).
    pub search: SearchStats,
}

/// One node's accumulated bound overrides: `(var, lo, hi)` entries applied
/// on top of the root LP.
type Overrides = Vec<(usize, f64, f64)>;

/// Solve a MILP by branch & bound.
pub fn solve_milp(
    problem: &MilpProblem,
    options: MilpOptions,
) -> Result<MilpSolution, SolverError> {
    solve_milp_carried(problem, options, None).map(|(solution, _)| solution)
}

/// [`solve_milp`] with a carried *root* tableau: chains of MILPs whose
/// LPs share constraint structure and differ only in the objective — the
/// AVG binary search solves one such MILP per probe — hand each solve's
/// root [`CanonicalTableau`] to the next, which re-prices it instead of
/// rebuilding (a structural mismatch demotes to the basis tier inside
/// [`solve_lp_tableau`], exactly like the LP chains). Returns the root
/// tableau for the next solve in the chain when
/// [`MilpOptions::tableau_carry`] is on and the search reached a root
/// solve (`None` otherwise — e.g. `prior` arrived poisoned or carry is
/// off); `prior` is ignored when carry is off.
pub fn solve_milp_carried(
    problem: &MilpProblem,
    options: MilpOptions,
    prior: Option<CanonicalTableau>,
) -> Result<(MilpSolution, Option<CanonicalTableau>), SolverError> {
    solve_milp_budgeted(problem, options, prior, &QueryBudget::unlimited())
}

/// [`solve_milp_carried`] under a [`QueryBudget`]: every claimed node
/// charges the budget, and a trip (deadline, node cap, explicit cancel)
/// drains the search within one node granule — in-flight node tasks
/// finish their single LP solve, no new nodes start. A tripped search
/// reports [`SolverError::BudgetExhausted`]; callers that can degrade
/// (the PC bounding engine) fall back to the root LP relaxation, an
/// outer bound of the MILP optimum.
pub fn solve_milp_budgeted(
    problem: &MilpProblem,
    options: MilpOptions,
    prior: Option<CanonicalTableau>,
    budget: &QueryBudget,
) -> Result<(MilpSolution, Option<CanonicalTableau>), SolverError> {
    if problem.integer.len() != problem.lp.num_vars() {
        return Err(SolverError::BadModel(
            "integrality flags length must equal variable count".into(),
        ));
    }
    if let Some(scores) = &problem.branch_scores {
        if scores.len() != problem.lp.num_vars() {
            return Err(SolverError::BadModel(
                "branch_scores length must equal variable count".into(),
            ));
        }
        if scores.iter().any(|w| !w.is_finite() || *w <= 0.0) {
            return Err(SolverError::BadModel(
                "branch_scores must be finite and positive".into(),
            ));
        }
    }
    if options.tableau_carry && !options.warm_start {
        // Mirror of the CLI flag-rejection hardening: the carried tableau
        // is the warm start's deeper tier, so "no warm starts, but carry
        // tableaux" is a contradiction — error instead of silently
        // picking one of the two readings.
        return Err(SolverError::BadModel(
            "MilpOptions::tableau_carry requires warm_start; disable both to run cold".into(),
        ));
    }
    // Node *basis* warm starts pay when a cold node solve has a real
    // phase 1 — i.e. some row standardizes with an artificial (Ge/Eq, or
    // a Le whose negative rhs flips). An all-Le program starts feasible
    // on its slack basis for free, so there the crash-and-restore
    // machinery is pure per-node overhead; skip it. (Branching only
    // tightens variable bounds, so the verdict holds for every node of
    // the tree.) The tableau carry is *not* auto-disabled: the rebuild it
    // eliminates exists regardless of phase-1 cost.
    let phase1_is_real = problem.lp.constraints.iter().any(|c| match c.op {
        crate::ConstraintOp::Ge | crate::ConstraintOp::Eq => true,
        crate::ConstraintOp::Le => c.rhs < 0.0,
    });
    let options = MilpOptions {
        warm_start: options.warm_start && phase1_is_real,
        ..options
    };
    let search = Search::new(problem, options, budget);
    if options.tableau_carry {
        *search.root_prior.lock().unwrap() = prior;
    }
    if options.threads == 1 {
        search.run_stack(Vec::new(), Warmth::Cold);
    } else {
        search.run_parallel(Vec::new(), Warmth::Cold, 0, false);
    }
    search.finish()
}

/// What a node inherits from its parent to warm its relaxation solve.
#[derive(Clone)]
enum Warmth {
    /// Nothing (the root, or both warm tiers disabled).
    Cold,
    /// The parent's optimal basis (tier 2).
    Basis(Arc<WarmStart>),
    /// The parent's canonical tableau plus the number of consecutive
    /// carries since the last rebuild (tier 3).
    Carried(Arc<CanonicalTableau>, u32),
}

/// Shared state of one branch & bound search, readable from every worker.
struct Search<'a> {
    problem: &'a MilpProblem,
    options: MilpOptions,
    /// The caller's cooperative budget, charged once per claimed node.
    budget: &'a QueryBudget,
    maximizing: bool,
    /// Best incumbent objective, bit-cast, for lock-free prune tests.
    /// Initialized to the sense's identity (−∞ / +∞) so "no incumbent"
    /// never prunes.
    best_bits: AtomicU64,
    /// The full incumbent `(objective, x)`; tie-broken deterministically.
    incumbent: Mutex<Option<(f64, Vec<f64>)>>,
    nodes: AtomicUsize,
    carried_nodes: AtomicU64,
    rebuilt_nodes: AtomicU64,
    carried_pivots: AtomicU64,
    rebuilt_pivots: AtomicU64,
    incumbent_first: AtomicU64,
    limit_hit: AtomicBool,
    /// Set when the budget tripped *during this search* (distinct from
    /// [`Search::limit_hit`], which is the solver's own node cap).
    budget_hit: AtomicBool,
    failed: AtomicBool,
    error: Mutex<Option<SolverError>>,
    /// A carried tableau for the *root* relaxation (chained in by
    /// [`solve_milp_carried`]; taken exactly once).
    root_prior: Mutex<Option<CanonicalTableau>>,
    /// The root's own canonical tableau, handed back to the chain.
    root_out: Mutex<Option<Arc<CanonicalTableau>>>,
}

impl<'a> Search<'a> {
    fn new(problem: &'a MilpProblem, options: MilpOptions, budget: &'a QueryBudget) -> Self {
        let maximizing = problem.lp.sense == Sense::Maximize;
        let identity = if maximizing {
            f64::NEG_INFINITY
        } else {
            f64::INFINITY
        };
        Search {
            problem,
            options,
            budget,
            maximizing,
            best_bits: AtomicU64::new(identity.to_bits()),
            incumbent: Mutex::new(None),
            nodes: AtomicUsize::new(0),
            carried_nodes: AtomicU64::new(0),
            rebuilt_nodes: AtomicU64::new(0),
            carried_pivots: AtomicU64::new(0),
            rebuilt_pivots: AtomicU64::new(0),
            incumbent_first: AtomicU64::new(0),
            limit_hit: AtomicBool::new(false),
            budget_hit: AtomicBool::new(false),
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
            root_prior: Mutex::new(None),
            root_out: Mutex::new(None),
        }
    }

    /// Claim the right to process one node, or flag the limit. Charges
    /// the query budget first: a tripped budget refuses the claim — the
    /// per-node granule at which a deadline/cancel drains the whole
    /// search (all workers' claims fail from here on).
    fn try_claim_node(&self) -> bool {
        if !self.budget.charge_node() {
            self.budget_hit.store(true, Ordering::SeqCst);
            return false;
        }
        loop {
            let n = self.nodes.load(Ordering::SeqCst);
            if n >= self.options.node_limit {
                self.limit_hit.store(true, Ordering::SeqCst);
                return false;
            }
            if self
                .nodes
                .compare_exchange(n, n + 1, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return true;
            }
        }
    }

    fn record_error(&self, e: SolverError) {
        let mut slot = self.error.lock().unwrap();
        if slot.is_none() {
            *slot = Some(e);
        }
        self.failed.store(true, Ordering::SeqCst);
    }

    fn record_carried(&self, pivots: u64) {
        self.carried_nodes.fetch_add(1, Ordering::Relaxed);
        self.carried_pivots.fetch_add(pivots, Ordering::Relaxed);
    }

    fn record_rebuilt(&self, stats: SolveStats) {
        self.rebuilt_nodes.fetch_add(1, Ordering::Relaxed);
        self.rebuilt_pivots
            .fetch_add(stats.pivots, Ordering::Relaxed);
    }

    fn aborted(&self) -> bool {
        self.failed.load(Ordering::SeqCst)
    }

    fn best(&self) -> f64 {
        f64::from_bits(self.best_bits.load(Ordering::Acquire))
    }

    /// `a` strictly better than `b` in the optimization direction.
    fn better(&self, a: f64, b: f64) -> bool {
        if self.maximizing {
            a > b
        } else {
            a < b
        }
    }

    /// Install `(obj, x)` as the incumbent if it beats the current one —
    /// or ties it with a lexicographically smaller `x` (the deterministic
    /// tie-break that makes the reported solution independent of worker
    /// scheduling).
    fn offer_incumbent(&self, obj: f64, x: Vec<f64>, is_near: bool) {
        let mut slot = self.incumbent.lock().unwrap();
        let replace = match &*slot {
            None => true,
            Some((best, best_x)) => {
                if self.better(obj, *best) {
                    true
                } else {
                    (obj - best).abs() <= TIE_TOL && lex_less(&x, best_x)
                }
            }
        };
        if replace {
            self.best_bits.store(obj.to_bits(), Ordering::Release);
            *slot = Some((obj, x));
            if is_near {
                self.incumbent_first.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Fold the node's bound overrides over the root bounds; `false`
    /// means some variable's interval emptied (the node is trivially
    /// infeasible, no LP needed).
    fn consistent_bounds(&self, overrides: &Overrides) -> bool {
        if overrides.is_empty() {
            return true;
        }
        let mut acc: HashMap<usize, (f64, f64)> = HashMap::with_capacity(overrides.len());
        for &(var, lo, hi) in overrides {
            let e = acc
                .entry(var)
                .or_insert_with(|| self.problem.lp.bounds[var]);
            e.0 = e.0.max(lo);
            e.1 = e.1.min(hi);
            if e.0 > e.1 {
                return false;
            }
        }
        true
    }

    /// The node's LP: the root relaxation with the accumulated bound
    /// overrides applied. Only built when a node actually rebuilds (the
    /// carried path never needs it).
    fn node_lp(&self, overrides: &Overrides) -> crate::LinearProgram {
        let mut lp = self.problem.lp.clone();
        for &(var, lo, hi) in overrides {
            let (cur_lo, cur_hi) = lp.bounds[var];
            lp.set_bounds(var, cur_lo.max(lo), cur_hi.min(hi));
        }
        lp
    }

    /// Solve one (already claimed) node. `is_near` says whether this node
    /// is the first-explored ("near") child of its parent's branch — it
    /// only feeds the [`SearchStats::incumbent_first_hits`] counter.
    /// Returns branch instructions — `(variable, fractional value, warmth
    /// for the children)` — or `None` when the node was pruned,
    /// infeasible, integral, or errored.
    fn process_node(
        &self,
        overrides: &Overrides,
        warmth: Warmth,
        is_near: bool,
    ) -> Option<(usize, f64, Warmth)> {
        if !self.consistent_bounds(overrides) {
            return None;
        }

        // Tier 3: answer the node from the carried parent tableau. The
        // node's *last* override is its own branch bound; everything
        // before it is already baked into the parent's tableau.
        let mut solved: Option<(crate::LpSolution, Warmth)> = None;
        if let Warmth::Carried(parent, carries) = &warmth {
            if *carries < TABLEAU_REFRESH_DEPTH {
                let &(var, lo, hi) = overrides.last().expect("carried node has a branch");
                let bound = if lo.is_finite() {
                    BranchBound::Lower(lo)
                } else {
                    BranchBound::Upper(hi)
                };
                match CanonicalTableau::solve_child(Arc::clone(parent), var, bound) {
                    ChildSolve::Solved { solution, tableau } => {
                        self.record_carried(tableau.stats().pivots);
                        solved = Some((solution, Warmth::Carried(Arc::new(tableau), carries + 1)));
                    }
                    ChildSolve::Infeasible { pivots } => {
                        self.record_carried(pivots);
                        return None;
                    }
                    // Stall: fall through to a fresh rebuild below.
                    ChildSolve::Stalled => {}
                }
            }
        }

        // Tiers 2/1 (and the root, carry stalls, periodic refreshes):
        // rebuild the node LP from scratch, crashing the parent basis in
        // when tier 2 is on.
        let (relax, child_warmth) = match solved {
            Some(pair) => pair,
            None => {
                let lp = self.node_lp(overrides);
                // A carried parent still donates its *basis* when the
                // carry itself didn't run (stall, periodic refresh): the
                // rebuild then costs the basis-crash tier, not a full
                // cold phase 1. A branched parent's shape may no longer
                // match the fresh standardization — crash_basis detects
                // that and degrades cold, so offering it is free.
                let basis = match (&warmth, self.options.warm_start) {
                    (Warmth::Basis(b), true) => Some((**b).clone()),
                    (Warmth::Carried(p, _), true) => Some(p.warm_start()),
                    _ => None,
                };
                // The root consults the *chain* prior (solve_milp_carried):
                // an AVG probe's root differs from the previous probe's
                // only in the objective, so the carried tableau re-prices
                // with zero rebuild — counted as a carried solve below.
                let is_root = overrides.is_empty();
                let prior = if is_root {
                    self.root_prior.lock().unwrap().take()
                } else {
                    None
                };
                match solve_lp_tableau(&lp, prior, basis.as_ref()) {
                    Ok((solution, tableau)) => {
                        if tableau.stats().rebuilt {
                            self.record_rebuilt(tableau.stats());
                        } else {
                            self.record_carried(tableau.stats().pivots);
                        }
                        let next = if self.options.tableau_carry {
                            let tableau = Arc::new(tableau);
                            if is_root {
                                *self.root_out.lock().unwrap() = Some(Arc::clone(&tableau));
                            }
                            Warmth::Carried(tableau, 0)
                        } else if self.options.warm_start {
                            Warmth::Basis(Arc::new(tableau.warm_start()))
                        } else {
                            Warmth::Cold
                        };
                        (solution, next)
                    }
                    Err(SolverError::Infeasible) => return None,
                    Err(e) => {
                        self.record_error(e);
                        return None;
                    }
                }
            }
        };

        // Prune by bound against the (possibly slightly stale) shared
        // incumbent: staleness can only delay a prune, never cause one.
        let best = self.best();
        let bound = relax.objective;
        let no_better = if self.maximizing {
            bound <= best + INT_TOL
        } else {
            bound >= best - INT_TOL
        };
        if no_better {
            return None;
        }

        // Find the branch variable: among the fractional integral
        // variables, maximize fractionality × branch weight (estimate
        // score). Without scores every weight is 1.0 and this is exactly
        // the classic most-fractional rule; ties keep the lowest index
        // either way.
        let mut branch_var = None;
        let mut best_score = 0.0;
        for (i, (&is_int, &v)) in self.problem.integer.iter().zip(&relax.x).enumerate() {
            if !is_int {
                continue;
            }
            let frac = (v - v.round()).abs();
            if frac <= INT_TOL {
                continue;
            }
            let weight = self.problem.branch_scores.as_ref().map_or(1.0, |s| s[i]);
            let score = frac * weight;
            if score > best_score {
                best_score = score;
                branch_var = Some((i, v));
            }
        }

        match branch_var {
            None => {
                // Integral (within tolerance): round and offer as incumbent.
                let mut x = relax.x;
                for (i, &is_int) in self.problem.integer.iter().enumerate() {
                    if is_int {
                        x[i] = x[i].round();
                    }
                }
                let obj = self.problem.lp.objective_at(&x);
                if self.problem.lp.is_feasible(&x, 1e-5) {
                    self.offer_incumbent(obj, x, is_near);
                }
                None
            }
            Some((var, v)) => Some((var, v, child_warmth)),
        }
    }

    /// The two children of a branch, `(near, far)`: the rounding direction
    /// closer to the relaxation first — better incumbents earlier, more
    /// pruning.
    fn children(overrides: Overrides, var: usize, v: f64) -> (Overrides, Overrides) {
        let mut down = overrides.clone();
        down.push((var, f64::NEG_INFINITY, v.floor()));
        let mut up = overrides;
        up.push((var, v.ceil(), f64::INFINITY));
        if v - v.floor() > 0.5 {
            (up, down)
        } else {
            (down, up)
        }
    }

    /// Deterministic sequential DFS with an explicit stack (the near child
    /// is pushed last, so it pops first — the pre-parallel visit order).
    fn run_stack(&self, overrides: Overrides, warmth: Warmth) {
        let mut stack: Vec<(Overrides, Warmth, bool)> = vec![(overrides, warmth, false)];
        while let Some((overrides, warmth, is_near)) = stack.pop() {
            if self.aborted() || !self.try_claim_node() {
                return;
            }
            if let Some((var, v, child_warmth)) = self.process_node(&overrides, warmth, is_near) {
                let (near, far) = Self::children(overrides, var, v);
                stack.push((far, child_warmth.clone(), false));
                stack.push((near, child_warmth, true));
            }
        }
    }

    /// Parallel exploration: the near child runs hot on this worker, the
    /// far child becomes a stealable task. Deep chains fall back to the
    /// stack search to bound recursion.
    fn run_parallel(&self, overrides: Overrides, warmth: Warmth, depth: usize, is_near: bool) {
        if depth >= PAR_DEPTH_LIMIT {
            return self.run_stack(overrides, warmth);
        }
        if self.aborted() || !self.try_claim_node() {
            return;
        }
        let Some((var, v, child_warmth)) = self.process_node(&overrides, warmth, is_near) else {
            return;
        };
        let (near, far) = Self::children(overrides, var, v);
        let far_warmth = child_warmth.clone();
        rayon::join(
            || self.run_parallel(near, child_warmth, depth + 1, true),
            || self.run_parallel(far, far_warmth, depth + 1, false),
        );
    }

    fn finish(self) -> Result<(MilpSolution, Option<CanonicalTableau>), SolverError> {
        // The root tableau for the caller's chain: by now every node task
        // has finished, so the Arc is usually unique and the unwrap is a
        // move, not a copy.
        let root = self
            .root_out
            .into_inner()
            .unwrap()
            .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|arc| (*arc).clone()));
        if let Some(e) = self.error.into_inner().unwrap() {
            return Err(e);
        }
        let nodes = self.nodes.into_inner();
        let search = SearchStats {
            carried_nodes: self.carried_nodes.into_inner(),
            rebuilt_nodes: self.rebuilt_nodes.into_inner(),
            carried_pivots: self.carried_pivots.into_inner(),
            rebuilt_pivots: self.rebuilt_pivots.into_inner(),
            incumbent_first_hits: self.incumbent_first.into_inner(),
        };
        let incumbent = self.incumbent.into_inner().unwrap();
        if self.budget_hit.into_inner() {
            // A cooperative abort, surfaced explicitly so the caller can
            // degrade (the engine falls back to the LP relaxation — a
            // sound outer bound — and marks the report degraded). The
            // incumbent, if any, is an *inner* bound and deliberately not
            // returned as if it were the answer.
            let reason = self.budget.trip_reason().unwrap_or(TripReason::NodeCap);
            return Err(SolverError::BudgetExhausted(reason));
        }
        if self.limit_hit.into_inner() {
            if self.options.best_effort {
                if let Some((objective, x)) = incumbent {
                    return Ok((
                        MilpSolution {
                            objective,
                            x,
                            proven_optimal: false,
                            nodes,
                            search,
                        },
                        root,
                    ));
                }
            }
            return Err(SolverError::LimitExceeded(self.options.node_limit));
        }
        match incumbent {
            Some((objective, x)) => Ok((
                MilpSolution {
                    objective,
                    x,
                    proven_optimal: true,
                    nodes,
                    search,
                },
                root,
            )),
            None => Err(SolverError::Infeasible),
        }
    }
}

/// Strict lexicographic order on solution vectors (`total_cmp`, so ties
/// resolve identically on every platform and schedule).
fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstraintOp::*;
    use crate::LinearProgram;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    /// Every valid (threads, warm_start, tableau_carry) combination the
    /// engine supports.
    fn all_modes() -> [MilpOptions; 6] {
        let base = MilpOptions::default();
        let tiers = [(false, false), (true, false), (true, true)];
        let mut out = [base; 6];
        let mut i = 0;
        for threads in [1usize, 0] {
            for (warm_start, tableau_carry) in tiers {
                out[i] = MilpOptions {
                    threads,
                    warm_start,
                    tableau_carry,
                    ..base
                };
                i += 1;
            }
        }
        out
    }

    #[test]
    fn knapsack() {
        // max 8a + 11b + 6c + 4d, 5a + 7b + 4c + 3d ≤ 14, binary → 21 (b,c,d)
        let mut lp = LinearProgram::maximize(vec![8.0, 11.0, 6.0, 4.0]);
        lp.add_constraint(vec![(0, 5.0), (1, 7.0), (2, 4.0), (3, 3.0)], Le, 14.0);
        for i in 0..4 {
            lp.set_bounds(i, 0.0, 1.0);
        }
        for options in all_modes() {
            let sol = solve_milp(&MilpProblem::all_integer(lp.clone()), options).unwrap();
            assert_close(sol.objective, 21.0);
            assert!(sol.proven_optimal);
            assert_eq!(
                sol.x.iter().map(|v| v.round() as i64).collect::<Vec<_>>(),
                vec![0, 1, 1, 1],
                "{options:?}"
            );
        }
    }

    #[test]
    fn lp_relaxation_would_be_fractional() {
        // max x + y s.t. 2x + 2y ≤ 3, integers → 1 (relaxation gives 1.5)
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], Le, 3.0);
        let sol = solve_milp(&MilpProblem::all_integer(lp), MilpOptions::default()).unwrap();
        assert_close(sol.objective, 1.0);
    }

    #[test]
    fn maximal_independent_set_reduction() {
        // §4.3 of the paper: a path graph v1 - v2 - v3.
        // Vertex vars x1,x2,x3 ∈ {0,1}; edge constraints x1+x2 ≤ 1,
        // x2+x3 ≤ 1. Max independent set = {v1, v3} → 2.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Le, 1.0);
        lp.add_constraint(vec![(1, 1.0), (2, 1.0)], Le, 1.0);
        for i in 0..3 {
            lp.set_bounds(i, 0.0, 1.0);
        }
        let sol = solve_milp(&MilpProblem::all_integer(lp), MilpOptions::default()).unwrap();
        assert_close(sol.objective, 2.0);
    }

    #[test]
    fn paper_overlapping_example() {
        // §4.4: cells c1 (t1∧t2) and c2 (¬t1∧t2);
        // t1: 50 ≤ x1 ≤ 100, t2: 75 ≤ x1 + x2 ≤ 125,
        // max 129.99·x1 + 149.99·x2 = 50·129.99 + 75·149.99 = 17748.75
        let mut lp = LinearProgram::maximize(vec![129.99, 149.99]);
        lp.add_constraint(vec![(0, 1.0)], Ge, 50.0);
        lp.add_constraint(vec![(0, 1.0)], Le, 100.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 75.0);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Le, 125.0);
        for options in all_modes() {
            let sol = solve_milp(&MilpProblem::all_integer(lp.clone()), options).unwrap();
            assert_close(sol.objective, 50.0 * 129.99 + 75.0 * 149.99);
            assert_close(sol.x[0], 50.0);
            assert_close(sol.x[1], 75.0);
        }
    }

    #[test]
    fn minimization() {
        // min x + y s.t. x + y ≥ 3.5, integers → 4
        let mut lp = LinearProgram::minimize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Ge, 3.5);
        for options in all_modes() {
            let sol = solve_milp(&MilpProblem::all_integer(lp.clone()), options).unwrap();
            assert_close(sol.objective, 4.0);
        }
    }

    #[test]
    fn mixed_integrality() {
        // max 2x + y, x ≤ 1.5, x + y ≤ 2.5, only x integral
        // → x = 1, y = 1.5 → 3.5
        let mut lp = LinearProgram::maximize(vec![2.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0)], Le, 1.5);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], Le, 2.5);
        let problem = MilpProblem {
            lp,
            integer: vec![true, false],
            branch_scores: None,
        };
        let sol = solve_milp(&problem, MilpOptions::default()).unwrap();
        assert_close(sol.objective, 3.5);
        assert_close(sol.x[0], 1.0);
        assert_close(sol.x[1], 1.5);
    }

    #[test]
    fn infeasible_integer_hole() {
        // 0.4 ≤ x ≤ 0.6 has no integer point
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.set_bounds(0, 0.4, 0.6);
        for options in all_modes() {
            let r = solve_milp(&MilpProblem::all_integer(lp.clone()), options);
            assert_eq!(r, Err(SolverError::Infeasible));
        }
    }

    #[test]
    fn carry_without_warm_start_is_rejected() {
        // The silent-knob gap, closed: this combination used to be
        // representable with one flag silently winning.
        let lp = LinearProgram::maximize(vec![1.0]);
        let r = solve_milp(
            &MilpProblem::all_integer(lp),
            MilpOptions {
                warm_start: false,
                tableau_carry: true,
                ..MilpOptions::default()
            },
        );
        assert!(
            matches!(r, Err(SolverError::BadModel(_))),
            "expected BadModel, got {r:?}"
        );
    }

    #[test]
    fn all_le_program_still_carries_tableaux() {
        // The all-Le auto-disable turns off the *basis* tier (phase 1 is
        // free), not the carry tier: children must still be answered from
        // carried tableaux, and the objective must match the cold oracle.
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], Le, 3.0);
        let problem = MilpProblem::all_integer(lp);
        let cold = solve_milp(
            &problem,
            MilpOptions {
                warm_start: false,
                tableau_carry: false,
                ..MilpOptions::default()
            },
        )
        .unwrap();
        let carry = solve_milp(&problem, MilpOptions::default()).unwrap();
        assert_close(cold.objective, carry.objective);
        assert_eq!(cold.search.carried_nodes, 0);
        assert!(
            carry.search.carried_nodes > 0,
            "all-Le trees must still carry: {:?}",
            carry.search
        );
    }

    #[test]
    fn budget_node_cap_trips_with_explicit_error() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], Le, 3.0);
        let problem = MilpProblem::all_integer(lp);
        let budget = QueryBudget::unlimited().with_node_cap(1);
        let r = solve_milp_budgeted(&problem, MilpOptions::default(), None, &budget);
        assert!(
            matches!(r, Err(SolverError::BudgetExhausted(TripReason::NodeCap))),
            "expected BudgetExhausted, got {r:?}"
        );
        assert!(budget.is_tripped());
    }

    #[test]
    fn cancelled_budget_aborts_search() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], Le, 3.0);
        let problem = MilpProblem::all_integer(lp);
        let budget = QueryBudget::armed();
        budget.cancel_token().expect("armed").cancel();
        let r = solve_milp_budgeted(&problem, MilpOptions::default(), None, &budget);
        assert!(
            matches!(r, Err(SolverError::BudgetExhausted(TripReason::Cancelled))),
            "expected cancelled abort, got {r:?}"
        );
    }

    #[test]
    fn unlimited_budget_changes_nothing() {
        let mut lp = LinearProgram::maximize(vec![8.0, 11.0, 6.0, 4.0]);
        lp.add_constraint(vec![(0, 5.0), (1, 7.0), (2, 4.0), (3, 3.0)], Le, 14.0);
        for i in 0..4 {
            lp.set_bounds(i, 0.0, 1.0);
        }
        let problem = MilpProblem::all_integer(lp);
        let plain = solve_milp(&problem, MilpOptions::default()).unwrap();
        let (budgeted, _) = solve_milp_budgeted(
            &problem,
            MilpOptions::default(),
            None,
            &QueryBudget::unlimited(),
        )
        .unwrap();
        assert_close(plain.objective, budgeted.objective);
        assert!(budgeted.proven_optimal);
    }

    #[test]
    fn node_limit_errors_without_best_effort() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 2.0)], Le, 3.0);
        let r = solve_milp(
            &MilpProblem::all_integer(lp),
            MilpOptions {
                node_limit: 1,
                best_effort: false,
                ..MilpOptions::default()
            },
        );
        assert_eq!(r, Err(SolverError::LimitExceeded(1)));
    }

    #[test]
    fn node_limit_best_effort_returns_incumbent() {
        // enough nodes to find *an* integral point, not enough to prove
        // optimality everywhere: the result must be feasible and flagged
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0, 7.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 3.0), (2, 5.0)], Le, 11.5);
        for i in 0..3 {
            lp.set_bounds(i, 0.0, 3.0);
        }
        let problem = MilpProblem::all_integer(lp.clone());
        let full = solve_milp(&problem, MilpOptions::default()).unwrap();
        let mut clipped = None;
        for limit in 2..20 {
            let r = solve_milp(
                &problem,
                MilpOptions {
                    node_limit: limit,
                    best_effort: true,
                    ..MilpOptions::default()
                },
            );
            if let Ok(sol) = r {
                if !sol.proven_optimal {
                    clipped = Some(sol);
                    break;
                }
            }
        }
        let sol = clipped.expect("some limit clips the search with an incumbent");
        assert!(lp.is_feasible(&sol.x, 1e-5));
        assert!(sol.objective <= full.objective + 1e-6);
    }

    #[test]
    fn warm_start_does_not_change_the_optimum() {
        // a denser problem where warm starts genuinely engage
        let mut lp = LinearProgram::maximize(vec![5.0, 4.0, 3.0, 6.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 3.0), (2, 1.0), (3, 2.0)], Le, 9.5);
        lp.add_constraint(vec![(0, 4.0), (1, 1.0), (2, 2.0)], Le, 10.5);
        lp.add_constraint(vec![(1, 1.0), (2, 4.0), (3, 3.0)], Le, 8.5);
        for i in 0..4 {
            lp.set_bounds(i, 0.0, 4.0);
        }
        let problem = MilpProblem::all_integer(lp);
        let cold = solve_milp(
            &problem,
            MilpOptions {
                warm_start: false,
                tableau_carry: false,
                ..MilpOptions::default()
            },
        )
        .unwrap();
        let warm = solve_milp(
            &problem,
            MilpOptions {
                warm_start: true,
                tableau_carry: false,
                ..MilpOptions::default()
            },
        )
        .unwrap();
        assert_close(cold.objective, warm.objective);
        assert!(problem.lp.is_feasible(&warm.x, 1e-5));
    }

    #[test]
    fn branch_scores_never_change_the_optimum() {
        // Weighted branching reorders the tree, not the answer: every
        // mode, with deliberately skewed weights, must match the unscored
        // solve exactly (same proven optimum; x may legitimately differ
        // between distinct optima, so only the objective is pinned).
        let mut lp = LinearProgram::maximize(vec![5.0, 4.0, 3.0, 6.0]);
        lp.add_constraint(vec![(0, 2.0), (1, 3.0), (2, 1.0), (3, 2.0)], Le, 9.5);
        lp.add_constraint(vec![(0, 4.0), (1, 1.0), (2, 2.0)], Le, 10.5);
        lp.add_constraint(vec![(1, 1.0), (2, 4.0), (3, 3.0)], Le, 8.5);
        for i in 0..4 {
            lp.set_bounds(i, 0.0, 4.0);
        }
        let plain = MilpProblem::all_integer(lp);
        let scored = plain.clone().with_branch_scores(vec![16.0, 0.25, 4.0, 1.0]);
        let reference = solve_milp(&plain, MilpOptions::default()).unwrap();
        for options in all_modes() {
            let sol = solve_milp(&scored, options).unwrap();
            assert_close(sol.objective, reference.objective);
            assert!(sol.proven_optimal, "{options:?}");
        }
    }

    #[test]
    fn malformed_branch_scores_are_rejected() {
        let lp = LinearProgram::maximize(vec![1.0, 1.0]);
        for bad in [
            vec![1.0],
            vec![1.0, f64::NAN],
            vec![1.0, 0.0],
            vec![1.0, -2.0],
        ] {
            let p = MilpProblem::all_integer(lp.clone()).with_branch_scores(bad.clone());
            let r = solve_milp(&p, MilpOptions::default());
            assert!(
                matches!(r, Err(SolverError::BadModel(_))),
                "scores {bad:?} must be rejected, got {r:?}"
            );
        }
    }

    #[test]
    fn carried_nodes_pivot_less_than_rebuilt_on_ge_programs() {
        // The measured O(m) → O(1): on a Ge-bearing allocation shape the
        // average pivots per carried node must be strictly below the
        // average per rebuilt node of the basis-only run.
        let mut lp = LinearProgram::maximize(vec![5.9, 4.9, 3.9, 6.9, 2.9]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], Ge, 2.0);
        lp.add_constraint(vec![(2, 1.0), (3, 1.0), (4, 1.0)], Ge, 3.0);
        lp.add_constraint(vec![(0, 2.0), (1, 3.0), (2, 1.0), (3, 2.0)], Le, 9.5);
        lp.add_constraint(vec![(0, 4.0), (1, 1.0), (2, 2.0), (4, 1.0)], Le, 10.5);
        lp.add_constraint(vec![(1, 1.0), (2, 4.0), (3, 3.0)], Le, 8.5);
        for i in 0..5 {
            lp.set_bounds(i, 0.0, 4.0);
        }
        let problem = MilpProblem::all_integer(lp);
        let carry = solve_milp(&problem, MilpOptions::default()).unwrap();
        let basis = solve_milp(
            &problem,
            MilpOptions {
                tableau_carry: false,
                ..MilpOptions::default()
            },
        )
        .unwrap();
        assert_close(carry.objective, basis.objective);
        assert!(carry.search.carried_nodes > 0, "{:?}", carry.search);
        let carried_avg = carry.search.carried_pivots as f64 / carry.search.carried_nodes as f64;
        let rebuilt_avg = basis.search.rebuilt_pivots as f64 / basis.search.rebuilt_nodes as f64;
        assert!(
            carried_avg < rebuilt_avg,
            "carried {carried_avg:.2} pivots/node vs rebuilt {rebuilt_avg:.2}"
        );
    }
}
