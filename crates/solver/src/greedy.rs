//! The paper's fast special case (§4.2, "Faster Algorithm in Special
//! Cases"): when predicate constraints are pairwise *disjoint*, every
//! predicate is its own cell, the MILP constraint matrix is diagonal, and
//! the optimum decomposes per variable.
//!
//! For `max Σ uᵢ·xᵢ` with `klᵢ ≤ xᵢ ≤ kuᵢ`, each `xᵢ` independently takes
//! `kuᵢ` when its objective coefficient is positive and `klᵢ` otherwise.
//! This is what lets the framework scale to thousands of partitioned PCs
//! (Fig 8 of the paper).

/// Result of the greedy allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedySolution {
    /// Optimal objective value.
    pub objective: f64,
    /// Per-variable allocation.
    pub x: Vec<f64>,
}

/// Maximize `Σ uᵢ·xᵢ` subject to `klᵢ ≤ xᵢ ≤ kuᵢ` with disjoint
/// constraints.
///
/// # Panics
/// Panics (debug) if `kl > ku` for some variable; callers validate
/// frequency constraints at construction.
pub fn maximize_disjoint(u: &[f64], freq: &[(f64, f64)]) -> GreedySolution {
    assert_eq!(u.len(), freq.len(), "objective/bounds length mismatch");
    let mut x = Vec::with_capacity(u.len());
    let mut objective = 0.0;
    for (&ui, &(kl, ku)) in u.iter().zip(freq) {
        debug_assert!(kl <= ku, "frequency bounds inverted: [{kl}, {ku}]");
        let xi = if ui > 0.0 { ku } else { kl };
        objective += ui * xi;
        x.push(xi);
    }
    GreedySolution { objective, x }
}

/// Minimize `Σ uᵢ·xᵢ` subject to `klᵢ ≤ xᵢ ≤ kuᵢ` with disjoint
/// constraints (used for lower bounds).
pub fn minimize_disjoint(u: &[f64], freq: &[(f64, f64)]) -> GreedySolution {
    let negated: Vec<f64> = u.iter().map(|v| -v).collect();
    let mut sol = maximize_disjoint(&negated, freq);
    sol.objective = -sol.objective;
    sol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_disjoint_example() {
        // §4.4 disjoint case: two day-buckets, price bounds
        // [0.99, 129.99] × (50, 100) and [0.99, 149.99] × (50, 100):
        // upper = 100·129.99 + 100·149.99 = 27998.00
        let sol = maximize_disjoint(&[129.99, 149.99], &[(50.0, 100.0), (50.0, 100.0)]);
        assert!((sol.objective - 27_998.0).abs() < 1e-9);
        assert_eq!(sol.x, vec![100.0, 100.0]);

        // lower = 50·0.99 + 50·0.99 = 99.00
        let sol = minimize_disjoint(&[0.99, 0.99], &[(50.0, 100.0), (50.0, 100.0)]);
        assert!((sol.objective - 99.0).abs() < 1e-9);
        assert_eq!(sol.x, vec![50.0, 50.0]);
    }

    #[test]
    fn negative_values_take_lower_frequency() {
        let sol = maximize_disjoint(&[-5.0, 3.0], &[(2.0, 10.0), (0.0, 4.0)]);
        assert_eq!(sol.x, vec![2.0, 4.0]);
        assert!((sol.objective - (-10.0 + 12.0)).abs() < 1e-12);
    }

    #[test]
    fn zero_coefficient_takes_lower() {
        // u = 0 contributes nothing either way; we take kl to keep COUNT
        // lower bounds minimal.
        let sol = maximize_disjoint(&[0.0], &[(3.0, 9.0)]);
        assert_eq!(sol.x, vec![3.0]);
        assert_eq!(sol.objective, 0.0);
    }

    #[test]
    fn empty_input() {
        let sol = maximize_disjoint(&[], &[]);
        assert_eq!(sol.objective, 0.0);
        assert!(sol.x.is_empty());
    }

    #[test]
    fn agrees_with_milp_on_disjoint_problems() {
        use crate::{solve_milp, ConstraintOp, LinearProgram, MilpOptions, MilpProblem};
        let u = [3.0, -2.0, 0.5, 7.0];
        let freq = [(0.0, 5.0), (1.0, 4.0), (2.0, 2.0), (0.0, 100.0)];
        let greedy = maximize_disjoint(&u, &freq);

        let mut lp = LinearProgram::maximize(u.to_vec());
        for (i, &(kl, ku)) in freq.iter().enumerate() {
            lp.add_constraint(vec![(i, 1.0)], ConstraintOp::Ge, kl);
            lp.add_constraint(vec![(i, 1.0)], ConstraintOp::Le, ku);
        }
        let milp = solve_milp(&MilpProblem::all_integer(lp), MilpOptions::default()).unwrap();
        assert!((greedy.objective - milp.objective).abs() < 1e-6);
    }
}
