//! Linear and mixed-integer linear programming for the Predicate-Constraint
//! framework.
//!
//! The paper's bounding algorithm (§4.2) formulates row allocation over
//! decomposed cells as a mixed-integer linear program, and its join bound
//! (§5.2) solves a small linear program for the tightest fractional edge
//! cover. Off-the-shelf solvers are not available offline, so this crate
//! implements both from scratch:
//!
//! * [`simplex`] — a dense two-phase primal simplex solver with Bland's
//!   anti-cycling rule.
//! * [`milp`] — branch & bound over the LP relaxation with incumbent
//!   pruning.
//! * [`greedy`] — the paper's fast special case for *disjoint* predicate
//!   constraints, where the MILP degenerates to per-variable choices.
//!
//! Problem sizes in the paper are modest (tens of overlapping PCs yielding
//! hundreds of cells; thousands of disjoint PCs which take the greedy
//! path), so a dense tableau is the right trade-off.

#![warn(missing_docs)]

mod error;
pub mod greedy;
mod linprog;
pub mod milp;
pub mod simplex;

pub use error::SolverError;
pub use linprog::{Constraint, ConstraintOp, LinearProgram, Sense};
pub use milp::{
    solve_milp, solve_milp_budgeted, solve_milp_carried, MilpOptions, MilpProblem, MilpSolution,
    SearchStats,
};
pub use simplex::{
    solve_lp, solve_lp_tableau, solve_lp_warm, BranchBound, CanonicalTableau, ChildSolve,
    LpSolution, SolveStats, WarmStart, ADAPT_MAX_DELTA,
};
