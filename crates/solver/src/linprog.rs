use crate::SolverError;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relational operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `row · x ≤ rhs`
    Le,
    /// `row · x ≥ rhs`
    Ge,
    /// `row · x = rhs`
    Eq,
}

/// A sparse linear constraint `Σ coefᵢ·x_{varᵢ}  op  rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// `(variable index, coefficient)` pairs; indices must be in range and
    /// may repeat (repeats are summed).
    pub terms: Vec<(usize, f64)>,
    /// The relational operator.
    pub op: ConstraintOp,
    /// Right-hand side.
    pub rhs: f64,
}

/// A linear program over `n` variables.
///
/// Variables carry individual `[lo, hi]` bounds; `lo` may be
/// `f64::NEG_INFINITY` (free below) and `hi` may be `f64::INFINITY`.
/// The default bounds are `[0, +∞)`, the natural domain for the row
/// allocation variables of the PC bounding MILP.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    /// Optimization direction.
    pub sense: Sense,
    /// Dense objective coefficients, one per variable.
    pub objective: Vec<f64>,
    /// The constraint rows.
    pub constraints: Vec<Constraint>,
    /// Per-variable `(lo, hi)` bounds.
    pub bounds: Vec<(f64, f64)>,
}

impl LinearProgram {
    /// A maximization problem over `n` variables with `x ≥ 0` bounds and no
    /// constraints yet.
    pub fn maximize(objective: Vec<f64>) -> Self {
        let n = objective.len();
        LinearProgram {
            sense: Sense::Maximize,
            objective,
            constraints: Vec::new(),
            bounds: vec![(0.0, f64::INFINITY); n],
        }
    }

    /// A minimization problem over `n` variables with `x ≥ 0` bounds.
    pub fn minimize(objective: Vec<f64>) -> Self {
        let mut lp = LinearProgram::maximize(objective);
        lp.sense = Sense::Minimize;
        lp
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.objective.len()
    }

    /// Add a constraint from sparse terms.
    pub fn add_constraint(&mut self, terms: Vec<(usize, f64)>, op: ConstraintOp, rhs: f64) {
        self.constraints.push(Constraint { terms, op, rhs });
    }

    /// Set the bounds of one variable.
    pub fn set_bounds(&mut self, var: usize, lo: f64, hi: f64) {
        self.bounds[var] = (lo, hi);
    }

    /// Validate dimensions and numeric sanity before solving.
    pub fn validate(&self) -> Result<(), SolverError> {
        let n = self.num_vars();
        if self.objective.iter().any(|c| c.is_nan()) {
            return Err(SolverError::BadModel("NaN objective coefficient".into()));
        }
        for (i, &(lo, hi)) in self.bounds.iter().enumerate() {
            if lo.is_nan() || hi.is_nan() {
                return Err(SolverError::BadModel(format!("NaN bound on x{i}")));
            }
            if lo > hi {
                return Err(SolverError::Infeasible);
            }
        }
        for (ci, c) in self.constraints.iter().enumerate() {
            if c.rhs.is_nan() {
                return Err(SolverError::BadModel(format!("NaN rhs in constraint {ci}")));
            }
            for &(var, coef) in &c.terms {
                if var >= n {
                    return Err(SolverError::BadModel(format!(
                        "constraint {ci} references x{var} but there are only {n} variables"
                    )));
                }
                if coef.is_nan() {
                    return Err(SolverError::BadModel(format!(
                        "NaN coefficient in constraint {ci}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Evaluate the objective at a point.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Check whether `x` satisfies all constraints and bounds within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        if x.len() != self.num_vars() {
            return false;
        }
        for (&(lo, hi), &v) in self.bounds.iter().zip(x) {
            if v < lo - tol || v > hi + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(var, coef)| coef * x[var]).sum();
            let ok = match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults() {
        let lp = LinearProgram::maximize(vec![1.0, 2.0]);
        assert_eq!(lp.num_vars(), 2);
        assert_eq!(lp.bounds, vec![(0.0, f64::INFINITY); 2]);
        assert!(lp.validate().is_ok());
    }

    #[test]
    fn validate_catches_bad_var_index() {
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_constraint(vec![(3, 1.0)], ConstraintOp::Le, 1.0);
        assert!(matches!(lp.validate(), Err(SolverError::BadModel(_))));
    }

    #[test]
    fn validate_catches_inverted_bounds() {
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.set_bounds(0, 5.0, 2.0);
        assert_eq!(lp.validate(), Err(SolverError::Infeasible));
    }

    #[test]
    fn feasibility_check() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_constraint(vec![(0, 1.0), (1, 1.0)], ConstraintOp::Le, 3.0);
        lp.add_constraint(vec![(0, 1.0)], ConstraintOp::Ge, 1.0);
        assert!(lp.is_feasible(&[1.0, 2.0], 1e-9));
        assert!(!lp.is_feasible(&[0.5, 1.0], 1e-9)); // violates Ge
        assert!(!lp.is_feasible(&[2.0, 2.0], 1e-9)); // violates Le
        assert!(!lp.is_feasible(&[-1.0, 0.0], 1e-9)); // violates bound
    }

    #[test]
    fn objective_eval() {
        let lp = LinearProgram::maximize(vec![2.0, -1.0]);
        assert_eq!(lp.objective_at(&[3.0, 4.0]), 2.0);
    }
}
