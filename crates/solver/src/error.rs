use pc_budget::TripReason;
use std::fmt;

/// Errors produced by the LP and MILP solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// No point satisfies all constraints and bounds.
    Infeasible,
    /// The objective can be improved without limit.
    Unbounded,
    /// The iteration or node limit was exhausted before convergence.
    /// Carries the limit that was hit, for diagnostics.
    LimitExceeded(usize),
    /// The query budget tripped mid-search (deadline, node cap, or
    /// cancel — see [`TripReason`]). Unlike [`LimitExceeded`] this is a
    /// *cooperative* abort requested by the caller's budget; the PC
    /// engine reacts by degrading to the LP relaxation bound rather
    /// than surfacing the error.
    ///
    /// [`LimitExceeded`]: SolverError::LimitExceeded
    BudgetExhausted(TripReason),
    /// The problem is malformed (mismatched dimensions, NaN coefficients,
    /// inverted bounds, …).
    BadModel(String),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Infeasible => write!(f, "problem is infeasible"),
            SolverError::Unbounded => write!(f, "problem is unbounded"),
            SolverError::LimitExceeded(n) => {
                write!(f, "solver limit of {n} iterations/nodes exceeded")
            }
            SolverError::BudgetExhausted(reason) => {
                write!(f, "query budget exhausted mid-search ({reason})")
            }
            SolverError::BadModel(msg) => write!(f, "malformed model: {msg}"),
        }
    }
}

impl std::error::Error for SolverError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(SolverError::Infeasible.to_string().contains("infeasible"));
        assert!(SolverError::Unbounded.to_string().contains("unbounded"));
        assert!(SolverError::LimitExceeded(10).to_string().contains("10"));
        assert!(SolverError::BudgetExhausted(TripReason::Deadline)
            .to_string()
            .contains("deadline"));
        assert!(SolverError::BadModel("x".into()).to_string().contains("x"));
    }
}
