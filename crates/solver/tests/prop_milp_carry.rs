//! Property-based equivalence of the tableau-carry tier (tier 3): a
//! branch & bound that answers each child from the parent's carried
//! canonical tableau must prove the same objective as the cold oracle on
//! random PC-allocation-shaped MILPs (`max u·x` over
//! `kl ≤ Σ_{i∈S} xᵢ ≤ ku` rows with `0 ≤ xᵢ ≤ cap`), sequentially and on
//! a pinned 4-worker pool — plus the pivot-count regression: carried
//! nodes must pivot strictly less (per node) than rebuilt nodes on
//! Ge-bearing programs, the measured O(m) → O(1) claim of the carry.
//!
//! Like `vendor/rayon/tests/stress.rs`, this binary pins
//! `RAYON_NUM_THREADS=4` before anything touches the pool, so the
//! parallel tests really run on four workers even on a single-core CI
//! container (more workers than cores = maximum interleaving).

use pc_solver::{solve_milp, ConstraintOp, LinearProgram, MilpOptions, MilpProblem, SolverError};
use proptest::prelude::*;
use std::sync::Once;

fn pool4() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        std::env::set_var("RAYON_NUM_THREADS", "4");
        assert_eq!(rayon::current_num_threads(), 4);
    });
}

const NVARS: usize = 6;
const CAP: i64 = 5;

#[derive(Debug, Clone)]
struct AllocProblem {
    u: Vec<f64>,
    // (membership bitmask over NVARS, kl, ku)
    rows: Vec<(u8, i64, i64)>,
}

prop_compose! {
    fn arb_problem()(
        u in prop::collection::vec(-6..=6i64, NVARS),
        rows in prop::collection::vec(
            (1u8..(1 << NVARS), 0..=9i64, 0..=9i64),
            1..6,
        ),
    ) -> AllocProblem {
        AllocProblem {
            u: u.into_iter().map(|v| v as f64).collect(),
            rows: rows
                .into_iter()
                .map(|(mask, a, b)| (mask, a.min(b), a.max(b)))
                .collect(),
        }
    }
}

fn build_lp(p: &AllocProblem) -> LinearProgram {
    let mut lp = LinearProgram::maximize(p.u.clone());
    for i in 0..NVARS {
        lp.set_bounds(i, 0.0, CAP as f64);
    }
    for &(mask, kl, ku) in &p.rows {
        let terms: Vec<(usize, f64)> = (0..NVARS)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| (i, 1.0))
            .collect();
        lp.add_constraint(terms.clone(), ConstraintOp::Ge, kl as f64);
        lp.add_constraint(terms, ConstraintOp::Le, ku as f64);
    }
    lp
}

const COLD: MilpOptions = MilpOptions {
    node_limit: 50_000,
    best_effort: false,
    threads: 1,
    warm_start: false,
    tableau_carry: false,
};

fn assert_equivalent(
    label: &str,
    a: &Result<pc_solver::MilpSolution, SolverError>,
    b: &Result<pc_solver::MilpSolution, SolverError>,
    lp: &LinearProgram,
) -> Result<(), TestCaseError> {
    match (a, b) {
        (Ok(sa), Ok(sb)) => {
            prop_assert!(
                (sa.objective - sb.objective).abs() < 1e-6,
                "{label}: {} vs {}",
                sa.objective,
                sb.objective
            );
            for sol in [sa, sb] {
                prop_assert!(lp.is_feasible(&sol.x, 1e-5), "{label}: infeasible x");
                for v in &sol.x {
                    prop_assert!((v - v.round()).abs() < 1e-6, "{label}: fractional x");
                }
                prop_assert!(sol.proven_optimal, "{label}: not proven");
            }
        }
        (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb, "{}: errors differ", label),
        (a, b) => prop_assert!(false, "{label}: {a:?} vs {b:?}"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn carry_matches_cold_sequential(p in arb_problem()) {
        pool4();
        let problem = MilpProblem::all_integer(build_lp(&p));
        let cold = solve_milp(&problem, COLD);
        let carry = solve_milp(&problem, MilpOptions { threads: 1, ..MilpOptions::default() });
        assert_equivalent("cold vs carry(seq)", &cold, &carry, &problem.lp)?;
    }

    #[test]
    fn carry_matches_cold_parallel(p in arb_problem()) {
        pool4();
        let problem = MilpProblem::all_integer(build_lp(&p));
        let cold = solve_milp(&problem, COLD);
        let carry = solve_milp(&problem, MilpOptions { threads: 0, ..MilpOptions::default() });
        assert_equivalent("cold vs carry(4w)", &cold, &carry, &problem.lp)?;
    }

    #[test]
    fn carry_matches_basis_tier(p in arb_problem()) {
        pool4();
        let problem = MilpProblem::all_integer(build_lp(&p));
        let basis = solve_milp(&problem, MilpOptions {
            threads: 1, tableau_carry: false, ..MilpOptions::default()
        });
        let carry = solve_milp(&problem, MilpOptions { threads: 1, ..MilpOptions::default() });
        assert_equivalent("basis vs carry", &basis, &carry, &problem.lp)?;
    }
}

/// A deterministic Ge-bearing allocation instance big enough that the
/// search genuinely branches (fractional row capacities force it).
fn branching_instance(shift: f64) -> MilpProblem {
    let mut lp =
        LinearProgram::maximize(vec![5.9 + shift, 4.9, 3.9 + shift, 6.9, 2.9, 4.4 + shift]);
    lp.add_constraint(vec![(0, 1.0), (1, 1.0), (2, 1.0)], ConstraintOp::Ge, 2.0);
    lp.add_constraint(vec![(2, 1.0), (3, 1.0), (4, 1.0)], ConstraintOp::Ge, 3.0);
    lp.add_constraint(vec![(3, 1.0), (4, 1.0), (5, 1.0)], ConstraintOp::Ge, 1.0);
    lp.add_constraint(
        vec![(0, 2.0), (1, 3.0), (2, 1.0), (3, 2.0)],
        ConstraintOp::Le,
        9.5,
    );
    lp.add_constraint(
        vec![(0, 4.0), (1, 1.0), (2, 2.0), (4, 1.0)],
        ConstraintOp::Le,
        10.5,
    );
    lp.add_constraint(
        vec![(1, 1.0), (2, 4.0), (3, 3.0), (5, 2.0)],
        ConstraintOp::Le,
        8.5,
    );
    for i in 0..6 {
        lp.set_bounds(i, 0.0, 4.0);
    }
    MilpProblem::all_integer(lp)
}

/// The pivot-count regression the ISSUE demands: on Ge-bearing programs,
/// nodes answered from a carried tableau pivot strictly less (per node)
/// than nodes that rebuild + crash — the O(m) rebuild elimination,
/// asserted rather than eyeballed.
#[test]
fn carried_nodes_pivot_strictly_less_than_rebuilt() {
    pool4();
    let mut carried_avgs = Vec::new();
    let mut rebuilt_avgs = Vec::new();
    for step in 0..4 {
        let problem = branching_instance(f64::from(step) * 0.3);
        let carry = solve_milp(&problem, MilpOptions::default()).expect("solvable");
        let basis = solve_milp(
            &problem,
            MilpOptions {
                tableau_carry: false,
                ..MilpOptions::default()
            },
        )
        .expect("solvable");
        assert!(
            (carry.objective - basis.objective).abs() < 1e-6,
            "objectives must agree: {} vs {}",
            carry.objective,
            basis.objective
        );
        assert!(
            carry.search.carried_nodes > 0,
            "instance {step} never carried: {:?}",
            carry.search
        );
        carried_avgs.push(carry.search.carried_pivots as f64 / carry.search.carried_nodes as f64);
        rebuilt_avgs.push(basis.search.rebuilt_pivots as f64 / basis.search.rebuilt_nodes as f64);
    }
    for (i, (c, r)) in carried_avgs.iter().zip(&rebuilt_avgs).enumerate() {
        assert!(
            c < r,
            "instance {i}: carried {c:.2} pivots/node must beat rebuilt {r:.2}"
        );
    }
}
