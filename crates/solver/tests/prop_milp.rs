//! Property-based verification of the LP and MILP solvers against a
//! brute-force oracle on small bounded integer programs of the exact shape
//! produced by PC bounding: `max u·x` subject to interval constraints
//! `kl ≤ Σ_{i∈S} xᵢ ≤ ku` over subsets `S`, with `0 ≤ xᵢ ≤ cap`.

use pc_solver::{
    solve_lp, solve_milp, ConstraintOp, LinearProgram, MilpOptions, MilpProblem, SolverError,
};
use proptest::prelude::*;

const NVARS: usize = 3;
const CAP: i64 = 4;

#[derive(Debug, Clone)]
struct PcShapedProblem {
    u: Vec<f64>,
    // (membership bitmask, kl, ku)
    rows: Vec<(u8, i64, i64)>,
}

prop_compose! {
    fn arb_problem()(
        u in prop::collection::vec(-5..=5i64, NVARS),
        rows in prop::collection::vec(
            (1u8..(1 << NVARS), 0..=6i64, 0..=6i64),
            0..4,
        ),
    ) -> PcShapedProblem {
        PcShapedProblem {
            u: u.into_iter().map(|v| v as f64).collect(),
            rows: rows
                .into_iter()
                .map(|(mask, a, b)| (mask, a.min(b), a.max(b)))
                .collect(),
        }
    }
}

fn build_lp(p: &PcShapedProblem) -> LinearProgram {
    let mut lp = LinearProgram::maximize(p.u.clone());
    for i in 0..NVARS {
        lp.set_bounds(i, 0.0, CAP as f64);
    }
    for &(mask, kl, ku) in &p.rows {
        let terms: Vec<(usize, f64)> = (0..NVARS)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| (i, 1.0))
            .collect();
        lp.add_constraint(terms.clone(), ConstraintOp::Ge, kl as f64);
        lp.add_constraint(terms, ConstraintOp::Le, ku as f64);
    }
    lp
}

/// Enumerate all integer points in [0, CAP]^NVARS.
fn brute_force(p: &PcShapedProblem) -> Option<f64> {
    let mut best: Option<f64> = None;
    let mut x = [0i64; NVARS];
    loop {
        let feasible = p.rows.iter().all(|&(mask, kl, ku)| {
            let s: i64 = (0..NVARS)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| x[i])
                .sum();
            kl <= s && s <= ku
        });
        if feasible {
            let obj: f64 = p.u.iter().zip(&x).map(|(c, &v)| c * v as f64).sum();
            best = Some(best.map_or(obj, |b: f64| b.max(obj)));
        }
        let mut k = 0;
        loop {
            if k == NVARS {
                return best;
            }
            x[k] += 1;
            if x[k] <= CAP {
                break;
            }
            x[k] = 0;
            k += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn milp_matches_brute_force(p in arb_problem()) {
        let lp = build_lp(&p);
        let got = solve_milp(&MilpProblem::all_integer(lp), MilpOptions::default());
        match brute_force(&p) {
            Some(best) => {
                let sol = got.expect("oracle says feasible");
                prop_assert!((sol.objective - best).abs() < 1e-6,
                    "milp {} vs oracle {}", sol.objective, best);
            }
            None => {
                prop_assert_eq!(got.unwrap_err(), SolverError::Infeasible);
            }
        }
    }

    #[test]
    fn lp_relaxation_dominates_milp(p in arb_problem()) {
        let lp = build_lp(&p);
        let relax = solve_lp(&lp);
        let milp = solve_milp(&MilpProblem::all_integer(lp), MilpOptions::default());
        if let (Ok(r), Ok(m)) = (relax, milp) {
            prop_assert!(r.objective >= m.objective - 1e-6,
                "relaxation {} must dominate integer optimum {}", r.objective, m.objective);
        }
    }

    #[test]
    fn lp_solution_is_feasible(p in arb_problem()) {
        let lp = build_lp(&p);
        if let Ok(sol) = solve_lp(&lp) {
            prop_assert!(lp.is_feasible(&sol.x, 1e-6));
        }
    }

    #[test]
    fn milp_solution_is_integral_and_feasible(p in arb_problem()) {
        let lp = build_lp(&p);
        if let Ok(sol) = solve_milp(&MilpProblem::all_integer(lp.clone()), MilpOptions::default()) {
            prop_assert!(lp.is_feasible(&sol.x, 1e-5));
            for v in &sol.x {
                prop_assert!((v - v.round()).abs() < 1e-6);
            }
        }
    }
}
