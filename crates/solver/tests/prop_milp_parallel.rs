//! Property-based equivalence of the branch & bound execution modes:
//! parallel must prove the same objective as sequential, and warm-started
//! must prove the same objective as cold, on random PC-allocation-shaped
//! MILPs (`max u·x` over `kl ≤ Σ_{i∈S} xᵢ ≤ ku` rows with `0 ≤ xᵢ ≤ cap`).
//!
//! Like `vendor/rayon/tests/stress.rs`, this binary pins
//! `RAYON_NUM_THREADS=4` before anything touches the pool, so the
//! parallel mode really runs on four workers even on a single-core CI
//! container (more workers than cores = maximum interleaving).

use pc_solver::{solve_milp, ConstraintOp, LinearProgram, MilpOptions, MilpProblem, SolverError};
use proptest::prelude::*;
use std::sync::Once;

fn pool4() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        std::env::set_var("RAYON_NUM_THREADS", "4");
        assert_eq!(rayon::current_num_threads(), 4);
    });
}

const NVARS: usize = 6;
const CAP: i64 = 5;

#[derive(Debug, Clone)]
struct AllocProblem {
    u: Vec<f64>,
    // (membership bitmask over NVARS, kl, ku)
    rows: Vec<(u8, i64, i64)>,
}

prop_compose! {
    fn arb_problem()(
        u in prop::collection::vec(-6..=6i64, NVARS),
        rows in prop::collection::vec(
            (1u8..(1 << NVARS), 0..=9i64, 0..=9i64),
            1..6,
        ),
    ) -> AllocProblem {
        AllocProblem {
            u: u.into_iter().map(|v| v as f64).collect(),
            rows: rows
                .into_iter()
                .map(|(mask, a, b)| (mask, a.min(b), a.max(b)))
                .collect(),
        }
    }
}

fn build_lp(p: &AllocProblem) -> LinearProgram {
    let mut lp = LinearProgram::maximize(p.u.clone());
    for i in 0..NVARS {
        lp.set_bounds(i, 0.0, CAP as f64);
    }
    for &(mask, kl, ku) in &p.rows {
        let terms: Vec<(usize, f64)> = (0..NVARS)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| (i, 1.0))
            .collect();
        lp.add_constraint(terms.clone(), ConstraintOp::Ge, kl as f64);
        lp.add_constraint(terms, ConstraintOp::Le, ku as f64);
    }
    lp
}

fn assert_equivalent(
    label: &str,
    a: &Result<pc_solver::MilpSolution, SolverError>,
    b: &Result<pc_solver::MilpSolution, SolverError>,
    lp: &LinearProgram,
) -> Result<(), TestCaseError> {
    match (a, b) {
        (Ok(sa), Ok(sb)) => {
            prop_assert!(
                (sa.objective - sb.objective).abs() < 1e-6,
                "{label}: {} vs {}",
                sa.objective,
                sb.objective
            );
            for sol in [sa, sb] {
                prop_assert!(lp.is_feasible(&sol.x, 1e-5), "{label}: infeasible x");
                for v in &sol.x {
                    prop_assert!((v - v.round()).abs() < 1e-6, "{label}: fractional x");
                }
                prop_assert!(sol.proven_optimal, "{label}: not proven");
            }
        }
        (Err(ea), Err(eb)) => prop_assert_eq!(ea, eb, "{}: errors differ", label),
        (a, b) => prop_assert!(false, "{label}: {a:?} vs {b:?}"),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn parallel_bnb_matches_sequential(p in arb_problem()) {
        pool4();
        let problem = MilpProblem::all_integer(build_lp(&p));
        let seq = solve_milp(&problem, MilpOptions { threads: 1, ..MilpOptions::default() });
        let par = solve_milp(&problem, MilpOptions { threads: 0, ..MilpOptions::default() });
        assert_equivalent("seq vs par", &seq, &par, &problem.lp)?;
    }

    #[test]
    fn warm_bnb_matches_cold(p in arb_problem()) {
        pool4();
        let problem = MilpProblem::all_integer(build_lp(&p));
        let cold = solve_milp(&problem, MilpOptions {
            warm_start: false, tableau_carry: false, ..MilpOptions::default()
        });
        let warm = solve_milp(&problem, MilpOptions {
            warm_start: true, tableau_carry: false, ..MilpOptions::default()
        });
        assert_equivalent("cold vs warm", &cold, &warm, &problem.lp)?;
    }

    #[test]
    fn parallel_warm_matches_sequential_cold(p in arb_problem()) {
        pool4();
        let problem = MilpProblem::all_integer(build_lp(&p));
        let base = solve_milp(&problem, MilpOptions {
            threads: 1, warm_start: false, tableau_carry: false, ..MilpOptions::default()
        });
        let fast = solve_milp(&problem, MilpOptions {
            threads: 0, warm_start: true, tableau_carry: false, ..MilpOptions::default()
        });
        assert_equivalent("baseline vs parallel+warm", &base, &fast, &problem.lp)?;
    }

    #[test]
    fn parallel_repeats_are_self_consistent(p in arb_problem()) {
        pool4();
        // scheduling nondeterminism must never leak into the objective
        let problem = MilpProblem::all_integer(build_lp(&p));
        let opts = MilpOptions { threads: 0, ..MilpOptions::default() };
        let first = solve_milp(&problem, opts);
        for _ in 0..3 {
            let again = solve_milp(&problem, opts);
            assert_equivalent("repeat", &first, &again, &problem.lp)?;
        }
    }
}
