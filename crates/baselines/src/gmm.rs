//! The generative-model baseline (§6.1.2): fit a Gaussian Mixture Model
//! to the missing data, sample synthetic missing rows from it, evaluate
//! the query on each synthetic instance, and report the min/max across
//! repetitions as the interval.
//!
//! The mixture is diagonal-covariance and trained with vanilla EM —
//! sufficient for the low-dimensional (2-3 attribute) tables of the
//! experiments, and deliberately *not* a hard bound: its failures on
//! multi-modal or discrete data are part of what Table 2 measures.

use crate::math;
use pc_predicate::{AttrType, Value};
use pc_storage::{evaluate, AggQuery, Table};
use rand::Rng;

/// A diagonal-covariance Gaussian mixture over the encoded attributes.
#[derive(Debug, Clone)]
pub struct GaussianMixture {
    weights: Vec<f64>,
    /// `means[k][d]`
    means: Vec<Vec<f64>>,
    /// `vars[k][d]` (floored away from zero)
    vars: Vec<Vec<f64>>,
}

const VAR_FLOOR: f64 = 1e-6;

impl GaussianMixture {
    /// Fit `k` components with `iters` EM iterations, initializing means
    /// from evenly spaced data rows.
    pub fn fit(data: &Table, k: usize, iters: usize) -> Self {
        assert!(k >= 1, "need at least one component");
        let n = data.len();
        let d = data.schema().width();
        let rows: Vec<Vec<f64>> = (0..n).map(|r| data.encoded_row(r)).collect();
        assert!(n >= 1, "cannot fit a mixture to an empty table");

        // initialize means at quantiles of the rows ordered by their
        // attribute sum — guarantees spread-out starting points on
        // clustered data regardless of row order
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            let sa: f64 = rows[a].iter().sum();
            let sb: f64 = rows[b].iter().sum();
            sa.partial_cmp(&sb).expect("encoded values are never NaN")
        });
        let mut means: Vec<Vec<f64>> = (0..k)
            .map(|c| rows[order[(c * (n - 1)) / (k - 1).max(1)]].clone())
            .collect();
        let global_var: Vec<f64> = (0..d)
            .map(|a| {
                let col: Vec<f64> = rows.iter().map(|r| r[a]).collect();
                math::sample_variance(&col).max(VAR_FLOOR)
            })
            .collect();
        let mut vars = vec![global_var.clone(); k];
        let mut weights = vec![1.0 / k as f64; k];
        let mut resp = vec![vec![0.0; k]; n];

        for _ in 0..iters {
            // E step
            for (i, row) in rows.iter().enumerate() {
                let mut total = 0.0;
                for c in 0..k {
                    let p = weights[c] * diag_density(row, &means[c], &vars[c]);
                    resp[i][c] = p;
                    total += p;
                }
                if total <= f64::MIN_POSITIVE {
                    // numerically orphaned row: spread evenly
                    resp[i].fill(1.0 / k as f64);
                } else {
                    for r in resp[i].iter_mut() {
                        *r /= total;
                    }
                }
            }
            // M step
            for c in 0..k {
                let nk: f64 = resp.iter().map(|r| r[c]).sum();
                if nk <= f64::MIN_POSITIVE {
                    continue; // dead component keeps its parameters
                }
                weights[c] = nk / n as f64;
                for a in 0..d {
                    let m: f64 = rows
                        .iter()
                        .zip(&resp)
                        .map(|(row, r)| r[c] * row[a])
                        .sum::<f64>()
                        / nk;
                    means[c][a] = m;
                    let v: f64 = rows
                        .iter()
                        .zip(&resp)
                        .map(|(row, r)| r[c] * (row[a] - m).powi(2))
                        .sum::<f64>()
                        / nk;
                    vars[c][a] = v.max(VAR_FLOOR);
                }
            }
        }
        GaussianMixture {
            weights,
            means,
            vars,
        }
    }

    /// Number of components.
    pub fn components(&self) -> usize {
        self.weights.len()
    }

    /// Sample `n` synthetic rows into a table with the given schema,
    /// rounding discrete attributes to their integer grid (categoricals
    /// clamp at zero).
    pub fn sample_table<R: Rng + ?Sized>(&self, template: &Table, n: usize, rng: &mut R) -> Table {
        let schema = template.schema().clone();
        let mut out = Table::new(schema.clone());
        for _ in 0..n {
            let c = pick_weighted(&self.weights, rng);
            let mut row = Vec::with_capacity(schema.width());
            for a in 0..schema.width() {
                let v = math::sample_normal(rng, self.means[c][a], self.vars[c][a].sqrt());
                row.push(match schema.attr_type(a) {
                    AttrType::Int => Value::Int(v.round() as i64),
                    AttrType::Float => Value::Float(v),
                    AttrType::Cat => Value::Cat(v.round().max(0.0) as u32),
                });
            }
            out.push_row(row);
        }
        out
    }

    /// The full generative pipeline: generate `population`-sized synthetic
    /// missing tables `repetitions` times, evaluate the query on each, and
    /// return the observed min/max as the interval (§6.1.2).
    pub fn interval_for_query<R: Rng + ?Sized>(
        &self,
        template: &Table,
        population: usize,
        query: &AggQuery,
        repetitions: usize,
        rng: &mut R,
    ) -> crate::sampling::Estimate {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut total = 0.0;
        for _ in 0..repetitions.max(1) {
            let synth = self.sample_table(template, population, rng);
            let v = evaluate(&synth, query).unwrap_or(0.0);
            lo = lo.min(v);
            hi = hi.max(v);
            total += v;
        }
        crate::sampling::Estimate {
            lo,
            hi,
            point: total / repetitions.max(1) as f64,
        }
    }
}

fn diag_density(x: &[f64], mean: &[f64], var: &[f64]) -> f64 {
    let mut log_p = 0.0;
    for ((xi, mi), vi) in x.iter().zip(mean).zip(var) {
        log_p += -0.5 * ((xi - mi).powi(2) / vi + vi.ln() + (2.0 * std::f64::consts::PI).ln());
    }
    log_p.exp()
}

fn pick_weighted<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    let total: f64 = weights.iter().sum();
    let mut t = rng.gen_range(0.0..total.max(f64::MIN_POSITIVE));
    for (i, w) in weights.iter().enumerate() {
        if t < *w {
            return i;
        }
        t -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{AttrType, Predicate, Schema};
    use pc_storage::AggKind;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_cluster_table(n: usize) -> Table {
        let schema = Schema::new(vec![("v", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..n {
            let v = if i % 2 == 0 { 10.0 } else { 50.0 };
            t.push_row(vec![Value::Float(v + (i % 5) as f64 * 0.1)]);
        }
        t
    }

    #[test]
    fn em_finds_two_clusters() {
        let t = two_cluster_table(200);
        let g = GaussianMixture::fit(&t, 2, 30);
        let mut means: Vec<f64> = g.means.iter().map(|m| m[0]).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((means[0] - 10.2).abs() < 1.0, "low cluster at {}", means[0]);
        assert!(
            (means[1] - 50.2).abs() < 1.0,
            "high cluster at {}",
            means[1]
        );
        assert!((g.weights.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn samples_resemble_training_data() {
        let t = two_cluster_table(200);
        let g = GaussianMixture::fit(&t, 2, 30);
        let mut rng = StdRng::seed_from_u64(1);
        let synth = g.sample_table(&t, 1000, &mut rng);
        let q = AggQuery::new(AggKind::Avg, 0, Predicate::always());
        let truth = evaluate(&t, &q).value();
        let got = evaluate(&synth, &q).value();
        assert!((truth - got).abs() < 3.0, "avg {got} vs {truth}");
    }

    #[test]
    fn interval_covers_typical_draws() {
        let t = two_cluster_table(100);
        let g = GaussianMixture::fit(&t, 2, 20);
        let mut rng = StdRng::seed_from_u64(2);
        let q = AggQuery::new(AggKind::Sum, 0, Predicate::always());
        let est = g.interval_for_query(&t, 100, &q, 10, &mut rng);
        assert!(est.lo < est.point && est.point < est.hi);
    }

    #[test]
    fn discrete_attrs_sample_on_grid() {
        let schema = Schema::new(vec![("g", AttrType::Int)]);
        let mut t = Table::new(schema);
        for i in 0..50 {
            t.push_row(vec![Value::Int(i % 3)]);
        }
        let g = GaussianMixture::fit(&t, 1, 10);
        let mut rng = StdRng::seed_from_u64(3);
        let synth = g.sample_table(&t, 20, &mut rng);
        for r in 0..synth.len() {
            let v = synth.encoded(r, 0);
            assert_eq!(v, v.round(), "integer attribute must stay integral");
        }
    }

    #[test]
    #[should_panic(expected = "empty table")]
    fn empty_training_rejected() {
        let schema = Schema::new(vec![("v", AttrType::Float)]);
        GaussianMixture::fit(&Table::new(schema), 2, 5);
    }
}
