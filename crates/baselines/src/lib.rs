//! Statistical baselines evaluated against the PC framework in the paper
//! (§6.1): sampling estimators with parametric and non-parametric
//! confidence intervals, equi-width histograms, a Gaussian-mixture
//! generative model, simple extrapolation, and elastic sensitivity for
//! join queries.
//!
//! These are *competitors*, not part of the guarantee-bearing framework:
//! each produces an interval that may fail to contain the truth (the
//! failure rates of Figs 3-6 and Table 2 are exactly what the experiments
//! measure).

#![warn(missing_docs)]

pub mod elastic;
pub mod extrapolate;
pub mod gmm;
pub mod histogram;
pub mod math;
pub mod sampling;

pub use elastic::{elastic_chain_bound, elastic_triangle_bound};
pub use extrapolate::simple_extrapolate;
pub use gmm::GaussianMixture;
pub use histogram::EquiWidthHistogram;
pub use sampling::{Ci, Estimate, StratifiedSample, UniformSample};
