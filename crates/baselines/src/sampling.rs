//! Sampling baselines (§6.1.1): the user supplies unbiased example missing
//! rows; the estimator extrapolates a population total and wraps it in a
//! confidence interval.
//!
//! Two interval families, as in the paper:
//!
//! * **Parametric (CLT)** — `N·x̄ ± z·N·s/√n`. Fails when the sample
//!   variance under-estimates the spread (selective queries, skew).
//! * **Non-parametric** — a Hoeffding-style interval whose width depends
//!   on the *observed sample range* instead of the sample variance (the
//!   milder-assumption bound of Hellerstein et al. \[12\]). Still fails when
//!   the sample misses extremal values, which is the paper's central
//!   observation about why hard bounds need PCs.

use crate::math;
use pc_storage::{AggKind, AggQuery, Table};
use rand::seq::SliceRandom;
use rand::Rng;

/// A point estimate with an interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Interval lower end.
    pub lo: f64,
    /// Interval upper end.
    pub hi: f64,
    /// The point estimate.
    pub point: f64,
}

impl Estimate {
    /// True if `v` lies inside the interval.
    pub fn contains(&self, v: f64) -> bool {
        self.lo - 1e-9 <= v && v <= self.hi + 1e-9
    }
}

/// Confidence interval scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Ci {
    /// Central-limit-theorem interval at the given confidence level
    /// (e.g. `0.99`).
    Parametric(f64),
    /// Range-based Hoeffding interval at the given confidence level.
    NonParametric(f64),
}

/// Per-row contribution of a query: `v` for SUM, `1` for COUNT — zero when
/// the row misses the predicate. Population totals are `N × mean`.
fn contribution(table: &Table, row: usize, query: &AggQuery, enc: &mut [f64]) -> f64 {
    table.encode_row_into(row, enc);
    if !query.predicate.eval(enc) {
        return 0.0;
    }
    match query.agg {
        AggKind::Count => 1.0,
        AggKind::Sum => enc[query.attr],
        other => panic!("sampling estimator supports COUNT and SUM, not {other:?}"),
    }
}

fn interval_from_contributions(contributions: &[f64], population: u64, ci: Ci) -> Estimate {
    let n = contributions.len().max(1) as f64;
    let npop = population as f64;
    let m = math::mean(contributions);
    let point = npop * m;
    let half = match ci {
        Ci::Parametric(conf) => {
            let sd = math::sample_variance(contributions).sqrt();
            math::z_for_confidence(conf) * npop * sd / n.sqrt()
        }
        Ci::NonParametric(_conf) => {
            // Hoeffding with the *estimated* range: the failure probability
            // 2·exp(−2nε²/R²) = 1 − conf gives ε = R·√(ln(2/(1−conf))/2n).
            let lo = contributions.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = contributions
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max);
            let range = if contributions.is_empty() {
                0.0
            } else {
                hi - lo
            };
            let delta = 1.0 - confidence_of(ci);
            npop * range * ((2.0 / delta).ln() / (2.0 * n)).sqrt()
        }
    };
    Estimate {
        lo: point - half,
        hi: point + half,
        point,
    }
}

fn confidence_of(ci: Ci) -> f64 {
    match ci {
        Ci::Parametric(c) | Ci::NonParametric(c) => c,
    }
}

/// A uniform random sample of the missing rows, plus the known population
/// size (the paper's setting assumes the number of missing rows is known;
/// mis-specifying it is studied separately via noise injection).
#[derive(Debug, Clone)]
pub struct UniformSample {
    sample: Table,
    population: u64,
}

impl UniformSample {
    /// Draw `n` rows uniformly without replacement (all rows if
    /// `n ≥ len`).
    pub fn draw<R: Rng + ?Sized>(missing: &Table, n: usize, rng: &mut R) -> Self {
        let mut idx: Vec<usize> = (0..missing.len()).collect();
        idx.shuffle(rng);
        idx.truncate(n.min(missing.len()));
        UniformSample {
            sample: missing.select(&idx),
            population: missing.len() as u64,
        }
    }

    /// Build from an explicit sample table and population size.
    pub fn from_parts(sample: Table, population: u64) -> Self {
        UniformSample { sample, population }
    }

    /// Draw from `pool` but extrapolate to an externally-known
    /// `population` (used when the pool itself is biased/truncated — the
    /// estimator believes it sampled the full missing partition).
    pub fn draw_with_population<R: Rng + ?Sized>(
        pool: &Table,
        n: usize,
        population: u64,
        rng: &mut R,
    ) -> Self {
        let mut s = UniformSample::draw(pool, n, rng);
        s.population = population;
        s
    }

    /// Number of sampled rows.
    pub fn len(&self) -> usize {
        self.sample.len()
    }

    /// True if the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sample.is_empty()
    }

    /// Estimate a COUNT or SUM query over the full missing partition.
    pub fn estimate(&self, query: &AggQuery, ci: Ci) -> Estimate {
        let mut enc = vec![0.0; self.sample.schema().width()];
        let contributions: Vec<f64> = (0..self.sample.len())
            .map(|r| contribution(&self.sample, r, query, &mut enc))
            .collect();
        interval_from_contributions(&contributions, self.population, ci)
    }
}

/// A stratified sample: strata defined by row-partition of the missing
/// table (the experiments stratify by the same grid the PCs use), sampled
/// proportionally.
#[derive(Debug, Clone)]
pub struct StratifiedSample {
    strata: Vec<(Table, u64)>,
}

impl StratifiedSample {
    /// Draw ~`n` total rows allocated proportionally to stratum sizes.
    /// Each non-empty stratum receives at least two rows (when it has
    /// them): a single observation gives a zero-width non-parametric
    /// range, which degenerates into guaranteed failures.
    pub fn draw<R: Rng + ?Sized>(
        missing: &Table,
        strata_rows: &[Vec<usize>],
        n: usize,
        rng: &mut R,
    ) -> Self {
        let total: usize = strata_rows.iter().map(Vec::len).sum();
        let mut strata = Vec::new();
        for rows in strata_rows {
            if rows.is_empty() {
                continue;
            }
            let share = ((n * rows.len()) as f64 / total.max(1) as f64).round() as usize;
            let take = share.max(2).min(rows.len());
            let mut idx = rows.clone();
            idx.shuffle(rng);
            idx.truncate(take);
            strata.push((missing.select(&idx), rows.len() as u64));
        }
        StratifiedSample { strata }
    }

    /// Total sampled rows across strata.
    pub fn len(&self) -> usize {
        self.strata.iter().map(|(t, _)| t.len()).sum()
    }

    /// True if no rows were sampled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimate a COUNT or SUM query: per-stratum totals summed, interval
    /// half-widths combined in quadrature (parametric) or summed
    /// (non-parametric — ranges do not cancel).
    pub fn estimate(&self, query: &AggQuery, ci: Ci) -> Estimate {
        let mut point = 0.0;
        let mut var_sum = 0.0;
        let mut half_sum = 0.0;
        for (sample, pop) in &self.strata {
            let mut enc = vec![0.0; sample.schema().width()];
            let contributions: Vec<f64> = (0..sample.len())
                .map(|r| contribution(sample, r, query, &mut enc))
                .collect();
            let est = interval_from_contributions(&contributions, *pop, ci);
            point += est.point;
            let half = (est.hi - est.lo) / 2.0;
            var_sum += half * half;
            half_sum += half;
        }
        let half = match ci {
            Ci::Parametric(_) => var_sum.sqrt(),
            Ci::NonParametric(_) => half_sum,
        };
        Estimate {
            lo: point - half,
            hi: point + half,
            point,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{Atom, AttrType, Predicate, Schema, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn table(values: &[f64]) -> Table {
        let schema = Schema::new(vec![("g", AttrType::Int), ("v", AttrType::Float)]);
        let mut t = Table::new(schema);
        for (i, &v) in values.iter().enumerate() {
            t.push_row(vec![Value::Int((i % 4) as i64), Value::Float(v)]);
        }
        t
    }

    #[test]
    fn full_sample_estimates_exactly() {
        let t = table(&[1.0, 2.0, 3.0, 4.0]);
        let mut rng = StdRng::seed_from_u64(1);
        let s = UniformSample::draw(&t, 4, &mut rng);
        let q = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let est = s.estimate(&q, Ci::Parametric(0.95));
        assert!((est.point - 10.0).abs() < 1e-9);
        assert!(est.contains(10.0));
    }

    #[test]
    fn count_estimate_with_predicate() {
        let t = table(&[1.0; 100]);
        let mut rng = StdRng::seed_from_u64(2);
        let s = UniformSample::draw(&t, 100, &mut rng);
        // g = 0 matches 25 of 100 rows
        let q = AggQuery::count(Predicate::atom(Atom::eq(0, 0.0)));
        let est = s.estimate(&q, Ci::NonParametric(0.95));
        assert!((est.point - 25.0).abs() < 1e-9);
    }

    #[test]
    fn small_sample_can_fail_on_skew() {
        // one huge outlier; a tiny sample that misses it produces an
        // interval excluding the truth — the paper's core observation
        let mut values = vec![1.0; 999];
        values.push(100_000.0);
        let t = table(&values);
        let q = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let truth = 999.0 + 100_000.0;
        let mut failures = 0;
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = UniformSample::draw(&t, 20, &mut rng);
            let est = s.estimate(&q, Ci::NonParametric(0.99));
            if !est.contains(truth) {
                failures += 1;
            }
        }
        assert!(failures > 10, "only {failures}/20 failed");
    }

    #[test]
    fn wider_confidence_widens_interval() {
        let t = table(&[5.0, 1.0, 9.0, 2.0, 7.0, 3.0, 8.0, 4.0]);
        let mut rng = StdRng::seed_from_u64(3);
        let s = UniformSample::draw(&t, 4, &mut rng);
        let q = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let e90 = s.estimate(&q, Ci::Parametric(0.90));
        let e99 = s.estimate(&q, Ci::Parametric(0.9999));
        assert!(e99.hi - e99.lo > e90.hi - e90.lo);
    }

    #[test]
    fn stratified_covers_all_strata() {
        let t = table(&(0..80).map(f64::from).collect::<Vec<_>>());
        let strata: Vec<Vec<usize>> = (0..4)
            .map(|g| (0..80).filter(|r| r % 4 == g).collect())
            .collect();
        let mut rng = StdRng::seed_from_u64(4);
        let s = StratifiedSample::draw(&t, &strata, 80, &mut rng);
        assert_eq!(s.len(), 80);
        let q = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let est = s.estimate(&q, Ci::Parametric(0.99));
        let truth: f64 = (0..80).map(f64::from).sum();
        assert!((est.point - truth).abs() < 1e-9);
    }

    #[test]
    fn stratified_partial_sample_unbiasedish() {
        let t = table(&(0..400).map(|i| f64::from(i % 10)).collect::<Vec<_>>());
        let strata: Vec<Vec<usize>> = (0..4)
            .map(|g| (0..400).filter(|r| r % 4 == g).collect())
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        let s = StratifiedSample::draw(&t, &strata, 100, &mut rng);
        let q = AggQuery::count(Predicate::always());
        let est = s.estimate(&q, Ci::NonParametric(0.99));
        assert!(
            (est.point - 400.0).abs() < 1e-9,
            "count extrapolates exactly"
        );
    }

    #[test]
    #[should_panic(expected = "COUNT and SUM")]
    fn avg_unsupported() {
        let t = table(&[1.0, 2.0]);
        let mut rng = StdRng::seed_from_u64(6);
        let s = UniformSample::draw(&t, 2, &mut rng);
        let q = AggQuery::new(AggKind::Avg, 1, Predicate::always());
        s.estimate(&q, Ci::Parametric(0.9));
    }
}
