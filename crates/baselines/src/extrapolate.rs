//! Simple extrapolation (§2.1, Figure 1): scale the answer computed on
//! the available rows by the inverse of the observed-data fraction.
//!
//! This is the strawman every analyst reaches for first. It silently
//! assumes the missing rows are exchangeable with the present ones — the
//! paper's Fig 1 shows its relative error exploding as correlated
//! missingness grows.

/// Extrapolate a SUM/COUNT-style total: `observed / (1 − missing_frac)`.
///
/// # Panics
/// Panics if `missing_fraction` is not within `[0, 1)` — with everything
/// missing there is nothing to extrapolate from.
pub fn simple_extrapolate(observed_total: f64, missing_fraction: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&missing_fraction),
        "missing fraction must be in [0, 1), got {missing_fraction}"
    );
    observed_total / (1.0 - missing_fraction)
}

/// Relative error |est − truth| / |truth| (0 when both are 0).
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    if truth == 0.0 {
        return if estimate == 0.0 { 0.0 } else { f64::INFINITY };
    }
    (estimate - truth).abs() / truth.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_when_missingness_uncorrelated() {
        // 80 observed of 100 uniform rows, total 100 → extrapolate 100
        let est = simple_extrapolate(80.0, 0.2);
        assert!((est - 100.0).abs() < 1e-9);
    }

    #[test]
    fn biased_when_missingness_correlated() {
        // the missing 20% held 60% of the mass: observed 40 of 100
        let est = simple_extrapolate(40.0, 0.2);
        assert!((est - 50.0).abs() < 1e-9);
        assert!((relative_error(est, 100.0) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn relative_error_edge_cases() {
        assert_eq!(relative_error(0.0, 0.0), 0.0);
        assert_eq!(relative_error(1.0, 0.0), f64::INFINITY);
        assert!((relative_error(110.0, 100.0) - 0.1).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "missing fraction")]
    fn all_missing_rejected() {
        simple_extrapolate(0.0, 1.0);
    }
}
