//! The equi-width histogram baseline (§6.1.3): per-attribute histograms
//! over the missing data, combined with "standard independence
//! assumptions" across attributes.
//!
//! Two query-answering modes are provided, matching the two ways the paper
//! uses histograms:
//!
//! * [`EquiWidthHistogram::bound_conservative`] — a *hard* bound that uses
//!   only marginal overlap counts (no independence assumption). This is a
//!   coarse 1-D special case of PCs and never fails (Figs 3/4's Histogram
//!   series).
//! * [`EquiWidthHistogram::estimate_independent`] — the classical
//!   independence-assumption estimator (what "Hist" does in Table 2):
//!   selectivities multiply across attributes, which silently breaks on
//!   correlated data — producing exactly the failures Table 2 reports.

use pc_storage::{AggKind, AggQuery, Table};

use crate::sampling::Estimate;

/// One attribute's equi-width marginal.
#[derive(Debug, Clone)]
struct Marginal {
    lo: f64,
    /// Observed maximum — the last bucket's upper edge is pinned here so
    /// accumulated floating-point error (`lo + buckets·width < hi`) can
    /// never let the extreme row escape the "hard" bound.
    hi: f64,
    width: f64,
    counts: Vec<u64>,
}

impl Marginal {
    fn build(values: &[f64], buckets: usize) -> Self {
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let (lo, hi) = if values.is_empty() {
            (0.0, 1.0)
        } else {
            (lo, hi)
        };
        let width = ((hi - lo) / buckets as f64).max(f64::MIN_POSITIVE);
        let mut counts = vec![0u64; buckets];
        for &v in values {
            let b = (((v - lo) / width) as usize).min(buckets - 1);
            counts[b] += 1;
        }
        Marginal {
            lo,
            hi,
            width,
            counts,
        }
    }

    fn bucket_range(&self, b: usize) -> (f64, f64) {
        let lo = self.lo + b as f64 * self.width;
        let hi = if b + 1 == self.counts.len() {
            self.hi.max(lo + self.width)
        } else {
            lo + self.width
        };
        (lo, hi)
    }

    /// Number of rows in buckets overlapping `[qlo, qhi]` — a hard upper
    /// bound on the rows matching the range.
    fn overlap_count(&self, qlo: f64, qhi: f64) -> u64 {
        (0..self.counts.len())
            .filter(|&b| {
                let (blo, bhi) = self.bucket_range(b);
                bhi >= qlo && blo <= qhi
            })
            .map(|b| self.counts[b])
            .sum()
    }

    /// Estimated fraction of rows matching `[qlo, qhi]` assuming uniform
    /// spread inside each bucket.
    fn selectivity(&self, qlo: f64, qhi: f64) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut matched = 0.0;
        for b in 0..self.counts.len() {
            let (blo, bhi) = self.bucket_range(b);
            let inter = (qhi.min(bhi) - qlo.max(blo)).max(0.0);
            if inter > 0.0 || (qlo <= blo && bhi <= qhi) {
                matched += self.counts[b] as f64 * (inter / self.width).min(1.0);
            }
        }
        (matched / total as f64).clamp(0.0, 1.0)
    }
}

/// Equi-width histograms over every attribute of the missing partition,
/// plus per-bucket value sums on the aggregate attribute.
#[derive(Debug, Clone)]
pub struct EquiWidthHistogram {
    marginals: Vec<Marginal>,
    /// Per-bucket sums of each attribute's own marginal (for SUM bounds).
    bucket_sums: Vec<Vec<f64>>,
    total_rows: u64,
}

impl EquiWidthHistogram {
    /// Build with `buckets` buckets per attribute. The information budget
    /// is `O(attrs × buckets)`, comparable to a PC set of the same size —
    /// the paper's "similar amount of information" protocol (§6.1).
    pub fn build(missing: &Table, buckets: usize) -> Self {
        assert!(buckets >= 1);
        let width = missing.schema().width();
        let mut marginals = Vec::with_capacity(width);
        let mut bucket_sums = Vec::with_capacity(width);
        for attr in 0..width {
            let values: Vec<f64> = (0..missing.len())
                .map(|r| missing.encoded(r, attr))
                .collect();
            let marginal = Marginal::build(&values, buckets);
            let mut sums = vec![0.0; buckets];
            for &v in &values {
                let b = (((v - marginal.lo) / marginal.width) as usize).min(buckets - 1);
                sums[b] += v;
            }
            marginals.push(marginal);
            bucket_sums.push(sums);
        }
        EquiWidthHistogram {
            marginals,
            bucket_sums,
            total_rows: missing.len() as u64,
        }
    }

    fn query_range(&self, query: &AggQuery, attr: usize) -> (f64, f64) {
        let iv = query.predicate.interval_for(attr);
        (iv.lo, iv.hi)
    }

    /// Hard bound using marginal overlap only: the count of matching rows
    /// cannot exceed the overlap count of *any* constrained attribute, and
    /// a SUM of non-negative values cannot exceed the overlapping buckets'
    /// value mass. Never fails (at the price of looseness).
    pub fn bound_conservative(&self, query: &AggQuery) -> Estimate {
        let mut count_cap = self.total_rows;
        for attr in 0..self.marginals.len() {
            let (qlo, qhi) = self.query_range(query, attr);
            if qlo == f64::NEG_INFINITY && qhi == f64::INFINITY {
                continue;
            }
            count_cap = count_cap.min(self.marginals[attr].overlap_count(qlo, qhi));
        }
        match query.agg {
            AggKind::Count => Estimate {
                lo: 0.0,
                hi: count_cap as f64,
                point: count_cap as f64 / 2.0,
            },
            AggKind::Sum => {
                // mass of the agg attribute's buckets overlapping the query
                let attr = query.attr;
                let (qlo, qhi) = self.query_range(query, attr);
                let marginal = &self.marginals[attr];
                let mut hi = 0.0;
                let mut max_val = f64::NEG_INFINITY;
                let mut min_val = f64::INFINITY;
                for b in 0..marginal.counts.len() {
                    let (blo, bhi) = marginal.bucket_range(b);
                    if bhi >= qlo && blo <= qhi && marginal.counts[b] > 0 {
                        hi += marginal.counts[b] as f64 * bhi.min(qhi);
                        max_val = max_val.max(bhi.min(qhi));
                        min_val = min_val.min(blo.max(qlo));
                    }
                }
                // the count cap from other attributes can tighten further
                if max_val.is_finite() {
                    hi = hi.min(count_cap as f64 * max_val);
                }
                let lo = if min_val.is_finite() {
                    (min_val).min(0.0) * count_cap as f64
                } else {
                    0.0
                };
                Estimate {
                    lo,
                    hi,
                    point: (lo + hi) / 2.0,
                }
            }
            other => panic!("histogram baseline supports COUNT and SUM, not {other:?}"),
        }
    }

    /// Independence-assumption estimate: selectivities of the predicate's
    /// attributes multiply; SUM scales the aggregate attribute's bucket
    /// mass. The interval brackets the estimate by the bucket resolution,
    /// *not* by any guarantee — correlated data breaks it (Table 2).
    pub fn estimate_independent(&self, query: &AggQuery) -> Estimate {
        let mut selectivity = 1.0;
        for attr in 0..self.marginals.len() {
            if query.agg != AggKind::Count && attr == query.attr {
                continue;
            }
            let (qlo, qhi) = self.query_range(query, attr);
            if qlo == f64::NEG_INFINITY && qhi == f64::INFINITY {
                continue;
            }
            selectivity *= self.marginals[attr].selectivity(qlo, qhi);
        }
        match query.agg {
            AggKind::Count => {
                let point = selectivity * self.total_rows as f64;
                // uncertainty: one bucket's worth of rows per constrained
                // attribute
                let slack = self
                    .marginals
                    .iter()
                    .map(|m| m.counts.iter().copied().max().unwrap_or(0) as f64)
                    .fold(0.0, f64::max);
                Estimate {
                    lo: (point - slack).max(0.0),
                    hi: point + slack,
                    point,
                }
            }
            AggKind::Sum => {
                let attr = query.attr;
                let (qlo, qhi) = self.query_range(query, attr);
                let marginal = &self.marginals[attr];
                let mut mass = 0.0;
                let mut slack = 0.0;
                for b in 0..marginal.counts.len() {
                    let (blo, bhi) = marginal.bucket_range(b);
                    if bhi >= qlo && blo <= qhi && marginal.counts[b] > 0 {
                        mass += self.bucket_sums[attr][b];
                        slack += marginal.counts[b] as f64 * (bhi - blo);
                    }
                }
                let point = selectivity * mass;
                let half = selectivity * slack;
                Estimate {
                    lo: point - half,
                    hi: point + half,
                    point,
                }
            }
            other => panic!("histogram baseline supports COUNT and SUM, not {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pc_predicate::{Atom, AttrType, Predicate, Schema, Value};
    use pc_storage::evaluate;

    /// `g` correlates perfectly with `v`: v = 10·g.
    fn correlated_table(n: usize) -> Table {
        let schema = Schema::new(vec![("g", AttrType::Int), ("v", AttrType::Float)]);
        let mut t = Table::new(schema);
        for i in 0..n {
            let g = (i % 10) as i64;
            t.push_row(vec![Value::Int(g), Value::Float(10.0 * g as f64)]);
        }
        t
    }

    #[test]
    fn conservative_count_never_fails() {
        let t = correlated_table(1000);
        let h = EquiWidthHistogram::build(&t, 10);
        for glo in 0..10 {
            for ghi in glo..10 {
                let q = AggQuery::count(Predicate::atom(Atom::between(
                    0,
                    f64::from(glo),
                    f64::from(ghi),
                )));
                let truth = evaluate(&t, &q).value();
                let est = h.bound_conservative(&q);
                assert!(
                    est.lo <= truth && truth <= est.hi,
                    "hard bound failed: {truth} ∉ [{}, {}]",
                    est.lo,
                    est.hi
                );
            }
        }
    }

    #[test]
    fn conservative_sum_never_fails_nonnegative() {
        let t = correlated_table(1000);
        let h = EquiWidthHistogram::build(&t, 10);
        for glo in 0..10 {
            let q = AggQuery::new(
                AggKind::Sum,
                1,
                Predicate::atom(Atom::between(0, f64::from(glo), 9.0)),
            );
            let truth = evaluate(&t, &q).value();
            let est = h.bound_conservative(&q);
            assert!(
                est.lo <= truth + 1e-9 && truth <= est.hi + 1e-9,
                "hard bound failed: {truth} ∉ [{}, {}]",
                est.lo,
                est.hi
            );
        }
    }

    #[test]
    fn independence_fails_under_correlation() {
        // query on g for SUM(v): independence spreads v-mass uniformly
        // across g-values, badly wrong when v = 10·g
        let t = correlated_table(1000);
        let h = EquiWidthHistogram::build(&t, 10);
        let mut failures = 0;
        for glo in 0..10 {
            let q = AggQuery::new(
                AggKind::Sum,
                1,
                Predicate::atom(Atom::between(0, f64::from(glo), f64::from(glo))),
            );
            let truth = evaluate(&t, &q).value();
            let est = h.estimate_independent(&q);
            if !(est.lo <= truth && truth <= est.hi) {
                failures += 1;
            }
        }
        assert!(failures > 0, "independence should fail on correlated data");
    }

    #[test]
    fn unconstrained_query_counts_everything() {
        let t = correlated_table(64);
        let h = EquiWidthHistogram::build(&t, 8);
        let q = AggQuery::count(Predicate::always());
        let est = h.bound_conservative(&q);
        assert_eq!(est.hi, 64.0);
        let ind = h.estimate_independent(&q);
        assert!((ind.point - 64.0).abs() < 1e-9);
    }
}
