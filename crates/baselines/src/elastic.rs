//! Elastic sensitivity (Johnson et al. \[14\]) as a join-size bounding
//! competitor, §6.6.3 / Fig 12.
//!
//! Elastic sensitivity bounds how much a counting join query can change
//! per tuple by multiplying the *maximum key frequencies* (`mf`) of the
//! join attributes in the other relations. When the frequency of a join
//! key is unknown — the missing-data setting — the worst case is the full
//! relation size, so each join step multiplies by the partner relation's
//! cardinality: the bound degenerates toward the Cartesian product, which
//! is exactly the gap Fig 12 visualizes against the fractional-edge-cover
//! bound.

/// Elastic-sensitivity bound for the triangle query
/// `|R(a,b) ⋈ S(b,c) ⋈ T(c,a)|` with relation sizes `n` and per-relation
/// maximum key frequency `mf` (worst case `mf = n`): every `R` edge can
/// pair with at most `mf_S` S-edges and `mf_T` T-edges.
pub fn elastic_triangle_bound(n: f64, mf: Option<f64>) -> f64 {
    let mf = mf.unwrap_or(n);
    n * mf * mf
}

/// Elastic-sensitivity bound for the acyclic chain
/// `R1(x1,x2) ⋈ … ⋈ Rk(xk,xk+1)` with equal relation sizes `k_rows`:
/// each chain step multiplies by the next relation's max key frequency
/// (worst case: its size), yielding the Cartesian-product-shaped
/// `k_rows^tables`.
pub fn elastic_chain_bound(k_rows: f64, tables: usize, mf: Option<f64>) -> f64 {
    assert!(tables >= 1);
    let mf = mf.unwrap_or(k_rows);
    k_rows * mf.powi(tables as i32 - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_worst_case_is_cubic() {
        assert_eq!(elastic_triangle_bound(10.0, None), 1000.0);
        assert_eq!(elastic_triangle_bound(100.0, None), 1e6);
    }

    #[test]
    fn triangle_with_known_mf() {
        assert_eq!(elastic_triangle_bound(100.0, Some(5.0)), 2500.0);
    }

    #[test]
    fn chain_worst_case_is_cartesian() {
        assert_eq!(elastic_chain_bound(10.0, 5, None), 1e5);
        assert_eq!(elastic_chain_bound(100.0, 3, None), 1e6);
    }

    #[test]
    fn chain_single_table() {
        assert_eq!(elastic_chain_bound(42.0, 1, None), 42.0);
    }

    #[test]
    fn fec_beats_elastic_at_scale() {
        // the headline comparison of Fig 12: N^1.5 vs N^3
        for n in [10.0_f64, 100.0, 1000.0, 10000.0] {
            let fec_shape = n.powf(1.5);
            let elastic = elastic_triangle_bound(n, None);
            assert!(fec_shape < elastic);
            // the gap grows with N
        }
    }
}
