//! Small numeric toolbox: normal quantiles for CLT confidence intervals
//! and Box–Muller Gaussian sampling (keeping `rand` the only randomness
//! dependency).

use rand::Rng;

/// Inverse standard normal CDF (the `z` value with `Φ(z) = p`), using
/// Acklam's rational approximation (relative error < 1.15e-9 — far below
/// the statistical noise of any experiment here).
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile needs p in (0,1), got {p}");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// The two-sided z value for a confidence level (e.g. `0.99` → ≈ 2.576).
pub fn z_for_confidence(confidence: f64) -> f64 {
    assert!(
        confidence > 0.0 && confidence < 1.0,
        "confidence must be in (0,1), got {confidence}"
    );
    normal_quantile(1.0 - (1.0 - confidence) / 2.0)
}

/// One standard normal draw via Box–Muller.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A `N(mean, sd²)` draw.
pub fn sample_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    mean + sd * sample_standard_normal(rng)
}

/// Sample mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance; 0 for slices shorter than 2.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn known_quantiles() {
        assert!((normal_quantile(0.5)).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-4);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-4);
        assert!((normal_quantile(0.0001) + 3.719016).abs() < 1e-4);
    }

    #[test]
    fn quantile_symmetry() {
        for p in [0.01, 0.1, 0.3, 0.45] {
            assert!((normal_quantile(p) + normal_quantile(1.0 - p)).abs() < 1e-6);
        }
    }

    #[test]
    fn z_values() {
        assert!((z_for_confidence(0.95) - 1.959964).abs() < 1e-4);
        assert!((z_for_confidence(0.99) - 2.575829).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn z_rejects_unit() {
        z_for_confidence(1.0);
    }

    #[test]
    fn normal_sampler_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let xs: Vec<f64> = (0..20_000)
            .map(|_| sample_normal(&mut rng, 3.0, 2.0))
            .collect();
        assert!((mean(&xs) - 3.0).abs() < 0.08, "mean {}", mean(&xs));
        let var = sample_variance(&xs);
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn mean_variance_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(sample_variance(&[1.0]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(sample_variance(&[2.0, 4.0]), 2.0);
    }
}
