//! Property-based tests for the statistical baselines: estimator
//! identities at full sampling, interval monotonicity, and the
//! conservative histogram's hard-bound contract.

use pc_baselines::{Ci, EquiWidthHistogram, StratifiedSample, UniformSample};
use pc_predicate::{Atom, AttrType, Predicate, Schema, Value};
use pc_storage::{evaluate, AggKind, AggQuery, Table};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn table_from(rows: &[(i64, i64)]) -> Table {
    let schema = Schema::new(vec![("g", AttrType::Int), ("v", AttrType::Int)]);
    let mut t = Table::new(schema);
    for &(g, v) in rows {
        t.push_row(vec![Value::Int(g), Value::Int(v)]);
    }
    t
}

prop_compose! {
    fn arb_rows()(rows in prop::collection::vec((0i64..5, 0i64..50), 1..40)) -> Vec<(i64, i64)> {
        rows
    }
}

prop_compose! {
    fn arb_pred()(a in 0i64..5, b in 0i64..5) -> Predicate {
        Predicate::atom(Atom::between(0, a.min(b) as f64, a.max(b) as f64))
    }
}

proptest! {
    #[test]
    fn full_sample_is_exact(rows in arb_rows(), pred in arb_pred(), seed in 0u64..100) {
        let t = table_from(&rows);
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = UniformSample::draw(&t, t.len(), &mut rng);
        for agg in [AggKind::Count, AggKind::Sum] {
            let q = AggQuery::new(agg, 1, pred.clone());
            let truth = evaluate(&t, &q).unwrap_or(0.0);
            let est = sample.estimate(&q, Ci::Parametric(0.95));
            prop_assert!((est.point - truth).abs() < 1e-9,
                "{agg:?}: full sample must be exact, {} vs {truth}", est.point);
            prop_assert!(est.contains(truth));
        }
    }

    #[test]
    fn intervals_widen_with_confidence(rows in arb_rows(), seed in 0u64..100) {
        let t = table_from(&rows);
        prop_assume!(t.len() >= 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = UniformSample::draw(&t, t.len() / 2, &mut rng);
        let q = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let mut prev_width = -1.0;
        for conf in [0.80, 0.90, 0.99, 0.9999] {
            for ci in [Ci::Parametric(conf), Ci::NonParametric(conf)] {
                let e = sample.estimate(&q, ci);
                prop_assert!(e.hi >= e.lo);
            }
            let e = sample.estimate(&q, Ci::NonParametric(conf));
            let width = e.hi - e.lo;
            prop_assert!(width >= prev_width - 1e-9, "width must grow with confidence");
            prev_width = width;
        }
    }

    #[test]
    fn stratified_point_matches_uniform_truth_at_full_draw(rows in arb_rows()) {
        let t = table_from(&rows);
        // strata by g value
        let strata: Vec<Vec<usize>> = (0..5)
            .map(|g| (0..t.len()).filter(|&r| t.encoded(r, 0) as i64 == g).collect())
            .collect();
        let mut rng = StdRng::seed_from_u64(7);
        let s = StratifiedSample::draw(&t, &strata, t.len(), &mut rng);
        let q = AggQuery::new(AggKind::Sum, 1, Predicate::always());
        let truth = evaluate(&t, &q).unwrap_or(0.0);
        let est = s.estimate(&q, Ci::Parametric(0.99));
        prop_assert!((est.point - truth).abs() < 1e-9);
    }

    #[test]
    fn conservative_histogram_never_fails(rows in arb_rows(), pred in arb_pred(), buckets in 2usize..12) {
        let t = table_from(&rows);
        let h = EquiWidthHistogram::build(&t, buckets);
        for agg in [AggKind::Count, AggKind::Sum] {
            let q = AggQuery::new(agg, 1, pred.clone());
            let truth = evaluate(&t, &q).unwrap_or(0.0);
            let e = h.bound_conservative(&q);
            prop_assert!(
                e.lo - 1e-9 <= truth && truth <= e.hi + 1e-9,
                "{agg:?}: hard bound failed, {truth} ∉ [{}, {}]", e.lo, e.hi
            );
        }
    }

    #[test]
    fn histogram_independent_is_exact_without_predicates(rows in arb_rows(), buckets in 2usize..12) {
        let t = table_from(&rows);
        let h = EquiWidthHistogram::build(&t, buckets);
        let q = AggQuery::count(Predicate::always());
        let truth = evaluate(&t, &q).unwrap_or(0.0);
        let e = h.estimate_independent(&q);
        prop_assert!((e.point - truth).abs() < 1e-6);
    }
}
