//! Vendored, dependency-free stand-in for the subset of the `rand` crate
//! API this workspace uses (`StdRng`, `SeedableRng`, `Rng::{gen,
//! gen_range, gen_bool}`, `seq::SliceRandom`). The workspace builds in an
//! offline container with an empty cargo registry, so the real crate
//! cannot be fetched; this shim keeps the public surface source-compatible
//! while staying deterministic and tiny.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — high quality
//! for test/benchmark data, though the *streams differ* from upstream
//! `rand`: seeds produce different (but still deterministic) sequences.

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types a [`Standard`] draw can produce.
pub trait StandardSample {
    /// Draw one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range on empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draw from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: the small generator is the same engine here.
    pub type SmallRng = StdRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling/choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// A convenient thread-local-free "thread rng": deterministic per call
/// site is unnecessary; this seeds from the system clock.
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos() as u64 ^ d.as_secs())
        .unwrap_or(0x5EED);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let u: usize = rng.gen_range(0..=3);
            assert!(u <= 3);
            let f: f64 = rng.gen_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
            let s: f64 = rng.gen();
            assert!((0.0..1.0).contains(&s));
        }
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "49! permutations: identity is (vanishingly) unlikely"
        );
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn next_u64_via_dyn_ref() {
        let mut rng = StdRng::seed_from_u64(1);
        let r: &mut dyn super::RngCore = &mut rng;
        let _ = r.next_u64();
    }
}
