//! Vendored, std-only stand-in for the subset of `proptest` this workspace
//! uses. The build container is offline with an empty registry, so the
//! real crate cannot be fetched.
//!
//! Supported surface: the [`proptest!`] and [`prop_compose!`] macros with
//! `ident in strategy` and `ident: type` bindings, integer/float range
//! strategies, tuple strategies, `prop::collection::vec`, `any::<T>()`,
//! [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`], and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! case number and the deterministic seed instead of a minimized input),
//! and generation streams differ. Each test function's cases are
//! deterministic across runs — seeded from the configured `seed` (default
//! fixed), so failures are reproducible.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The generator handed to strategies.
    pub type TestRng = StdRng;

    /// A value source: proptest's `Strategy`, minus shrinking.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy from a plain closure (used by `prop_compose!`).
    pub struct FnStrategy<F> {
        f: F,
    }

    impl<F> FnStrategy<F> {
        /// Wrap a closure.
        pub fn new(f: F) -> Self {
            FnStrategy { f }
        }
    }

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            (self.f)(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Types with a canonical `any::<T>()` strategy.
    pub trait ArbitraryValue: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.gen_range(<$t>::MIN..=<$t>::MAX)
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// The `any::<T>()` strategy.
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Canonical strategy for `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::{Strategy, TestRng};
    use rand::Rng;

    /// Element-count specification for [`vec`]: a fixed size or a range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of another strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..n).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    use crate::strategy::TestRng;
    use rand::SeedableRng;

    /// Per-test configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed: the property is violated.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is skipped.
        Reject,
    }

    impl TestCaseError {
        /// Failure with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Single-case outcome.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Drive `case` for `config.cases` accepted cases; panics on the first
    /// failure with the case index and the rng seed (cases are
    /// deterministic, so reruns reproduce it).
    pub fn run_cases(
        config: &ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
    ) {
        let seed: u64 = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v.trim().parse().unwrap_or(0x5EED_CAFE),
            Err(_) => 0x5EED_CAFE,
        };
        let mut accepted: u32 = 0;
        let mut attempts: u64 = 0;
        let max_attempts = u64::from(config.cases) * 20 + 1000;
        while accepted < config.cases {
            let mut rng =
                TestRng::seed_from_u64(seed ^ attempts.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed at case attempt {attempts} (seed {seed}): {msg}"
                    );
                }
            }
            attempts += 1;
            if attempts >= max_attempts {
                panic!(
                    "proptest `{name}`: too many rejected cases ({accepted}/{} accepted after {attempts} attempts)",
                    config.cases
                );
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, proptest,
    };
}

/// Assert a boolean property inside `proptest!`/`prop_compose!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Assert equality inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(a == b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (left: `{:?}`, right: `{:?}`)", format!($($fmt)*), a, b),
            ));
        }
    }};
}

/// Assert inequality inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Reject the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        $crate::prop_assume!($cond)
    };
}

/// Bind `name in strategy` / `name: type` argument lists; internal to
/// [`proptest!`] and [`prop_compose!`].
#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:pat in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::strategy::Strategy::new_value(&($strat), &mut *$rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name = $crate::strategy::Strategy::new_value(
            &$crate::strategy::any::<$ty>(), &mut *$rng,
        );
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// The `proptest!` test-harness macro (no shrinking in this shim).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            $crate::test_runner::run_cases(&config, stringify!($name), |rng| {
                $crate::__proptest_bind!(rng, $($args)*);
                let _ = &rng;
                $body
                ::core::result::Result::Ok(())
            });
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// The `prop_compose!` strategy-composition macro.
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident($($outer:tt)*)($($args:tt)*) -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($outer)*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy::new(move |rng: &mut $crate::strategy::TestRng| {
                $crate::__proptest_bind!(rng, $($args)*);
                $body
            })
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    prop_compose! {
        fn arb_pair()(a in 0i64..10, b in 0i64..10) -> (i64, i64) {
            (a.min(b), a.max(b))
        }
    }

    prop_compose! {
        fn arb_scaled(k: i64)(v in 1i64..=5) -> i64 {
            v * k
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn pairs_ordered((lo, hi) in arb_pair()) {
            prop_assert!(lo <= hi);
        }

        #[test]
        fn ranges_and_vecs(
            xs in prop::collection::vec((0i64..5, 0i64..50), 1..40),
            flag: bool,
            n in 2usize..12,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 40);
            for (a, b) in &xs {
                prop_assert!((0..5).contains(a), "a = {}", a);
                prop_assert!((0..50).contains(b));
            }
            prop_assert!((2..12).contains(&n));
            let _ = flag;
        }

        #[test]
        fn outer_args_capture(v in arb_scaled(3)) {
            prop_assert_eq!(v % 3, 0);
            prop_assert!((3..=15).contains(&v));
        }

        #[test]
        fn assume_rejects(x in 0i64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest `failing` failed")]
    fn failure_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            fn failing(x in 0i64..10) {
                prop_assert!(x < 5, "x = {} escaped", x);
            }
        }
        failing();
    }
}
