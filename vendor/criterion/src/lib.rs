//! Vendored, std-only stand-in for the subset of `criterion` this
//! workspace's benches use. The build container is offline with an empty
//! registry, so the real crate cannot be fetched.
//!
//! Benchmarks run with `harness = false` bench targets: [`criterion_main!`]
//! emits `fn main()`. Each benchmark is warmed up, then timed over
//! `sample_size` samples (median and mean of per-iteration nanoseconds are
//! reported on stdout). Set `PC_BENCH_JSON=<path>` to also append one JSON
//! object per benchmark — the workspace's `BENCH_*.json` files are
//! produced this way. `PC_BENCH_FILTER=<substring>` skips non-matching
//! benchmark ids.

use std::fmt::{self, Display};
use std::io::Write as _;
use std::time::Instant;

pub use std::hint::black_box;

/// A benchmark id: function name plus an optional parameter, rendered
/// `name/param` like upstream criterion.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.name.is_empty(), &self.parameter) {
            (false, Some(p)) => write!(f, "{}/{}", self.name, p),
            (false, None) => write!(f, "{}", self.name),
            (true, Some(p)) => write!(f, "{p}"),
            (true, None) => Ok(()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Times closures handed to `iter`.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` repeatedly, recording per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up + calibration: find an iteration count that lasts long
        // enough for the clock to resolve it.
        let mut iters_per_sample = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed.as_micros() >= 50 || iters_per_sample >= 1 << 20 {
                break;
            }
            iters_per_sample *= 4;
        }
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct Measurement {
    id: String,
    median_ns: f64,
    mean_ns: f64,
    samples: usize,
}

/// The top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Upstream-compatible no-op (CLI args are ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let sample_size = self.sample_size;
        run_one(None, id.into(), sample_size, f);
        self
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Samples per benchmark (upstream enforces ≥ 10; the shim accepts
    /// anything ≥ 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), id.into(), self.sample_size, |b| {
            f(b, input)
        });
        self
    }

    /// Benchmark without an input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(Some(&self.name), id.into(), self.sample_size, f);
        self
    }

    /// End the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(&mut self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    id: BenchmarkId,
    sample_size: usize,
    mut f: F,
) {
    let full_id = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if let Ok(filter) = std::env::var("PC_BENCH_FILTER") {
        if !filter.is_empty() && !full_id.contains(&filter) {
            return;
        }
    }
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        eprintln!("warning: benchmark `{full_id}` never called iter()");
        return;
    }
    let mut sorted = b.samples.clone();
    sorted.sort_by(|x, y| x.partial_cmp(y).expect("no NaN timings"));
    let median_ns = sorted[sorted.len() / 2];
    let mean_ns = sorted.iter().sum::<f64>() / sorted.len() as f64;
    let m = Measurement {
        id: full_id,
        median_ns,
        mean_ns,
        samples: sorted.len(),
    };
    println!(
        "bench {:<60} median {:>12}  mean {:>12}  ({} samples)",
        m.id,
        format_ns(m.median_ns),
        format_ns(m.mean_ns),
        m.samples
    );
    if let Ok(path) = std::env::var("PC_BENCH_JSON") {
        if !path.is_empty() {
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                let _ = writeln!(
                    file,
                    "{{\"id\": \"{}\", \"median_ns\": {:.1}, \"mean_ns\": {:.1}, \"samples\": {}}}",
                    m.id.replace('"', "'"),
                    m.median_ns,
                    m.mean_ns,
                    m.samples
                );
            }
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function invoking each target with a fresh
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `fn main()` running the given groups (bench targets use
/// `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_upstream() {
        assert_eq!(BenchmarkId::new("dfs", 12).to_string(), "dfs/12");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }

    #[test]
    fn bench_runs_and_measures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(5);
        let mut ran = 0u64;
        group.bench_function("sum", |b| {
            b.iter(|| {
                ran += 1;
                (0..100u64).sum::<u64>()
            })
        });
        group.finish();
        assert!(ran > 0, "routine must have been invoked");
    }
}
