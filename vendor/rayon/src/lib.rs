//! Vendored, std-only stand-in for the slice of the `rayon` API this
//! workspace uses. The build container is offline with an empty registry,
//! so the real crate cannot be fetched.
//!
//! Unlike the previous shim (which spawned a scoped thread per [`join`]),
//! this version runs a genuine **work-stealing pool**: a lazily-started
//! set of worker threads (sized by `RAYON_NUM_THREADS`, else the machine's
//! available parallelism), each with its own deque. [`join`] pushes its
//! second closure as a *stealable task* and runs the first inline; a
//! caller whose second closure was stolen does not block — it pops and
//! runs other local work, steals from other workers, and returns as soon
//! as the stolen closure's completion latch flips. [`scope`] /
//! [`Scope::spawn`] provide dynamic fan-out with the same discipline.
//! Deep, irregular recursion (decomposition subtrees, branch & bound,
//! witness search) therefore parallelizes at every fork point for the
//! price of a deque push, instead of an OS thread.
//!
//! See [`pool`]'s module docs for the architecture, stealing discipline,
//! and panic semantics in detail. The public API is a compatible subset of
//! the real crate: with a registry available, `rayon = "1"` drops in
//! unchanged.
//!
//! With one worker (`RAYON_NUM_THREADS=1` or a single-core machine) every
//! entry point degrades to strictly sequential inline execution — no
//! threads are ever started, and `join(a, b)` is exactly `(a(), b())`.
//!
//! # Deadlines
//!
//! [`with_task_deadline`] arms an ambient deadline for the duration of a
//! closure; every task forked inside it (transitively, across `join`,
//! `scope`, and [`spawn`]) inherits the stamp, and the pool serves
//! stamped fan-out earliest-deadline-first (see [`pool`]'s "Deadline
//! lane" docs). With no deadline armed the scheduler is byte-for-byte
//! the plain FIFO/LIFO work-stealing discipline.

mod pool;

#[cfg(feature = "fault")]
pub use pool::fault;
use pool::{global_registry, HeapJob, StackJob, WorkerThread};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Run `a` and `b`, potentially in parallel, returning both results.
///
/// `a` runs on the calling thread; `b` is pushed onto the worker's deque
/// where any idle worker may steal it. If nobody does, the caller pops it
/// back and runs it inline (sequential order, zero thread traffic). If it
/// *was* stolen, the caller works on other tasks until `b` completes.
///
/// Calls from outside the pool migrate into it first (blocking the
/// external thread until both closures finish). If either closure panics,
/// the panic is resurfaced on the caller **after** both closures have
/// finished — a thief never outlives the stack frame it borrowed — with
/// `a`'s panic taking precedence.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if pool::pool_size() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    match WorkerThread::current() {
        Some(worker) => join_on_worker(worker, a, b),
        None => global_registry().in_worker_cold(move |worker| join_on_worker(worker, a, b)),
    }
}

fn join_on_worker<A, B, RA, RB>(worker: &WorkerThread, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let b_job = StackJob::new(b);
    // Safety: we do not leave this frame until the job's latch is set
    // (wait_for_stack_job), so the reference cannot dangle.
    let b_ref = unsafe { b_job.as_job_ref() };
    worker.push(b_ref);
    let ra = panic::catch_unwind(AssertUnwindSafe(a));
    worker.wait_for_stack_job(&b_job);
    let rb = b_job.into_result();
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        // `a`'s panic wins; `b`'s payload (if any) is dropped, like the
        // real crate.
        (Err(payload), _) => panic::resume_unwind(payload),
        (Ok(_), Err(payload)) => panic::resume_unwind(payload),
    }
}

/// A scope for spawning an unknown-ahead-of-time number of tasks that may
/// borrow from the enclosing stack frame (`'scope`). Created by [`scope`],
/// which does not return until every spawned task has finished.
pub struct Scope<'scope> {
    /// Tasks spawned but not yet finished.
    pending: AtomicUsize,
    /// First panic observed in a spawned task.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// One-worker mode: run tasks inline at the spawn site.
    inline: bool,
    /// Invariant over `'scope` (spawned closures may borrow mutably).
    marker: PhantomData<&'scope mut &'scope ()>,
}

/// Create a scope, run `op` inside it, and wait for every task it spawned
/// (transitively) to finish. The waiting thread is not idle: it executes
/// and steals pool work until the scope drains. The first panic from `op`
/// or any task is resurfaced after the scope is fully drained.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    if pool::pool_size() <= 1 {
        let s = Scope::new(true);
        let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
        return s.finish(result);
    }
    match WorkerThread::current() {
        Some(worker) => scope_on_worker(worker, op),
        None => global_registry().in_worker_cold(move |worker| scope_on_worker(worker, op)),
    }
}

fn scope_on_worker<'scope, OP, R>(worker: &WorkerThread, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let s = Scope::new(false);
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
    worker.wait_until(|| s.pending.load(Ordering::SeqCst) == 0);
    s.finish(result)
}

impl<'scope> Scope<'scope> {
    fn new(inline: bool) -> Self {
        Scope {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            inline,
            marker: PhantomData,
        }
    }

    /// Spawn a task into the scope. The task may borrow anything that
    /// outlives the [`scope`] call and may itself spawn further tasks.
    ///
    /// Tasks go onto the spawning worker's own deque (LIFO next to its
    /// current work) when called from inside the pool, and onto the global
    /// injector otherwise. A task panic is captured and re-thrown by the
    /// enclosing [`scope`] once everything has drained.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        if self.inline {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(self))) {
                self.store_panic(payload);
            }
            return;
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        let scope_ptr = SendPtr(self as *const Scope<'scope> as *const ());
        // Safety: the job borrows `self` (and whatever `body` captured
        // from `'scope`) through raw pointers; `scope` blocks until
        // `pending` hits zero, which this job's epilogue guarantees to
        // happen only after `body` has returned or panicked.
        let job = HeapJob::into_job_ref(move || {
            let scope = unsafe { &*(scope_ptr.get() as *const Scope<'_>) };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(scope))) {
                scope.store_panic(payload);
            }
            scope.pending.fetch_sub(1, Ordering::SeqCst);
        });
        match WorkerThread::current() {
            Some(worker) => worker.push_fanout(job),
            None => global_registry().inject(job),
        }
    }

    fn store_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Propagate panics (the body's own first, then the first task's) and
    /// unwrap the result.
    fn finish<R>(&self, result: std::thread::Result<R>) -> R {
        match result {
            Err(payload) => panic::resume_unwind(payload),
            Ok(r) => {
                if let Some(payload) = self.panic.lock().unwrap().take() {
                    panic::resume_unwind(payload);
                }
                r
            }
        }
    }
}

/// Raw-pointer wrapper asserting `Send` (the pointee is a [`Scope`], whose
/// shared state is all thread-safe).
struct SendPtr(*const ());
unsafe impl Send for SendPtr {}

impl SendPtr {
    /// Accessor (rather than direct field access) so closures capture the
    /// whole `Send` wrapper, not the raw pointer field (edition-2021
    /// disjoint capture would otherwise un-`Send` the closure).
    fn get(&self) -> *const () {
        self.0
    }
}

/// Spawn a detached fire-and-forget task onto the pool.
///
/// Unlike [`Scope::spawn`] the closure is `'static`: nothing waits for
/// it, so completion must be signalled through whatever it captured (a
/// channel, a counter). If an ambient deadline is armed at the call site
/// the task is stamped with it and queued earliest-deadline-first;
/// otherwise it joins the FIFO injector. A panic inside the task is
/// swallowed — there is no caller to resurface it on, and a pool worker
/// must never die. With one worker the task runs inline at the call site
/// (the shim's usual sequential degradation).
pub fn spawn<F>(f: F)
where
    F: FnOnce() + Send + 'static,
{
    let job = HeapJob::into_job_ref(move || {
        let _ = panic::catch_unwind(AssertUnwindSafe(f));
    });
    if pool::pool_size() <= 1 {
        job.execute();
        return;
    }
    match WorkerThread::current() {
        Some(worker) => worker.push_fanout(job),
        None => global_registry().inject(job),
    }
}

/// Arm `deadline` as the ambient task deadline for the duration of `f`.
///
/// Every task forked inside `f` — transitively, across [`join`],
/// [`scope`], and [`spawn`] — is stamped with the deadline and scheduled
/// earliest-deadline-first against other stamped work. `None` clears the
/// stamp (useful to fence off untimed maintenance work from a timed
/// caller). The previous ambient deadline is restored when `f` returns
/// or unwinds. Purely a scheduling hint: it never changes what any task
/// computes, only when it runs.
pub fn with_task_deadline<R>(deadline: Option<Instant>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Instant>);
    impl Drop for Restore {
        fn drop(&mut self) {
            pool::set_task_deadline(self.0);
        }
    }
    let _restore = Restore(pool::task_deadline());
    pool::set_task_deadline(deadline);
    f()
}

/// The ambient task deadline of the current thread (the innermost
/// [`with_task_deadline`], or the stamp of the pool task being executed).
pub fn current_task_deadline() -> Option<Instant> {
    pool::task_deadline()
}

/// Number of worker threads the pool runs with: `RAYON_NUM_THREADS` if set
/// to a positive integer, else the machine's available parallelism. Fixed
/// for the life of the process.
pub fn current_num_threads() -> usize {
    pool::pool_size()
}

/// The calling thread's index within the pool (`0..current_num_threads()`),
/// or `None` when called from outside the pool. Useful for per-worker
/// caches.
pub fn current_thread_index() -> Option<usize> {
    WorkerThread::current().map(|w| w.index())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_parallel_side_effects() {
        let xs: Vec<u64> = (0..1000).collect();
        let (l, r) = join(
            || xs[..500].iter().sum::<u64>(),
            || xs[500..].iter().sum::<u64>(),
        );
        assert_eq!(l + r, 499_500);
    }

    #[test]
    fn nested_joins() {
        fn sum(lo: u64, hi: u64, depth: usize) -> u64 {
            if depth == 0 || hi - lo < 2 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| sum(lo, mid, depth - 1), || sum(mid, hi, depth - 1));
            a + b
        }
        assert_eq!(sum(0, 10_000, 6), (0..10_000).sum::<u64>());
    }

    #[test]
    fn deep_unbalanced_joins() {
        // a left-leaning chain: the second closure is tiny at every level,
        // so stealing (if any) and pop-back must both keep the totals right
        fn chain(n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            let (rest, one) = join(|| chain(n - 1), || 1u64);
            rest + one
        }
        assert_eq!(chain(300), 300);
    }

    #[test]
    fn scope_runs_all_tasks() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            for i in 0..64u64 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(i, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), (0..64).sum::<u64>());
    }

    #[test]
    fn scope_tasks_can_spawn_more() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..8 {
                let counter = &counter;
                s.spawn(move |s| {
                    for _ in 0..8 {
                        s.spawn(move |_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_returns_value() {
        let v = scope(|s| {
            s.spawn(|_| {});
            42
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn join_propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            join(|| 1, || panic!("boom-b"));
        });
        let payload = r.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom-b");

        let r = std::panic::catch_unwind(|| {
            join(|| panic!("boom-a"), || 2);
        });
        assert!(r.is_err());
    }

    #[test]
    fn scope_propagates_task_panics() {
        let r = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("task panic"));
            });
        });
        assert!(r.is_err());
        // the pool must survive a propagated panic
        let (a, b) = join(|| 1, || 2);
        assert_eq!(a + b, 3);
    }

    #[test]
    fn thread_count_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn external_thread_has_no_index() {
        assert_eq!(current_thread_index(), None);
    }

    #[test]
    fn deadline_scopes_nest_and_restore() {
        use std::time::{Duration, Instant};
        assert_eq!(current_task_deadline(), None);
        let outer = Instant::now() + Duration::from_secs(60);
        let inner = Instant::now() + Duration::from_secs(1);
        with_task_deadline(Some(outer), || {
            assert_eq!(current_task_deadline(), Some(outer));
            with_task_deadline(Some(inner), || {
                assert_eq!(current_task_deadline(), Some(inner));
            });
            assert_eq!(current_task_deadline(), Some(outer));
            with_task_deadline(None, || {
                assert_eq!(current_task_deadline(), None);
            });
            assert_eq!(current_task_deadline(), Some(outer));
        });
        assert_eq!(current_task_deadline(), None);
    }

    #[test]
    fn forked_tasks_inherit_deadline() {
        use std::sync::atomic::AtomicBool;
        use std::time::{Duration, Instant};
        let deadline = Instant::now() + Duration::from_secs(60);
        let join_saw = AtomicBool::new(false);
        let scope_saw = AtomicBool::new(false);
        with_task_deadline(Some(deadline), || {
            join(
                || {},
                || {
                    join_saw.store(current_task_deadline() == Some(deadline), Ordering::SeqCst);
                },
            );
            scope(|s| {
                let scope_saw = &scope_saw;
                s.spawn(move |_| {
                    scope_saw.store(current_task_deadline() == Some(deadline), Ordering::SeqCst);
                });
            });
        });
        assert!(join_saw.load(Ordering::SeqCst));
        assert!(scope_saw.load(Ordering::SeqCst));
    }

    #[test]
    fn spawn_runs_detached_tasks() {
        use std::sync::mpsc;
        use std::time::{Duration, Instant};
        let (tx, rx) = mpsc::channel();
        for i in 0..16u64 {
            let tx = tx.clone();
            let deadline = Instant::now() + Duration::from_millis(200 + i);
            with_task_deadline(Some(deadline), || {
                let tx = tx.clone();
                spawn(move || {
                    tx.send(i).unwrap();
                });
            });
        }
        drop(tx);
        let mut total = 0u64;
        for _ in 0..16 {
            total += rx.recv_timeout(Duration::from_secs(10)).unwrap();
        }
        assert_eq!(total, (0..16).sum::<u64>());
    }

    #[test]
    fn spawn_swallows_panics() {
        use std::sync::mpsc;
        use std::time::Duration;
        spawn(|| panic!("detached panic"));
        // the pool (or inline path) must remain usable
        let (tx, rx) = mpsc::channel();
        spawn(move || tx.send(7u32).unwrap());
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 7);
    }
}
