//! Vendored, std-only stand-in for the slice of the `rayon` API this
//! workspace uses. The build container is offline with an empty registry,
//! so the real crate cannot be fetched.
//!
//! Unlike the previous shim (which spawned a scoped thread per [`join`]),
//! this version runs a genuine **work-stealing pool**: a lazily-started
//! set of worker threads (sized by `RAYON_NUM_THREADS`, else the machine's
//! available parallelism), each with its own deque. [`join`] pushes its
//! second closure as a *stealable task* and runs the first inline; a
//! caller whose second closure was stolen does not block — it pops and
//! runs other local work, steals from other workers, and returns as soon
//! as the stolen closure's completion latch flips. [`scope`] /
//! [`Scope::spawn`] provide dynamic fan-out with the same discipline.
//! Deep, irregular recursion (decomposition subtrees, branch & bound,
//! witness search) therefore parallelizes at every fork point for the
//! price of a deque push, instead of an OS thread.
//!
//! See [`pool`]'s module docs for the architecture, stealing discipline,
//! and panic semantics in detail. The public API is a compatible subset of
//! the real crate: with a registry available, `rayon = "1"` drops in
//! unchanged.
//!
//! With one worker (`RAYON_NUM_THREADS=1` or a single-core machine) every
//! entry point degrades to strictly sequential inline execution — no
//! threads are ever started, and `join(a, b)` is exactly `(a(), b())`.

mod pool;

use pool::{global_registry, HeapJob, StackJob, WorkerThread};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Run `a` and `b`, potentially in parallel, returning both results.
///
/// `a` runs on the calling thread; `b` is pushed onto the worker's deque
/// where any idle worker may steal it. If nobody does, the caller pops it
/// back and runs it inline (sequential order, zero thread traffic). If it
/// *was* stolen, the caller works on other tasks until `b` completes.
///
/// Calls from outside the pool migrate into it first (blocking the
/// external thread until both closures finish). If either closure panics,
/// the panic is resurfaced on the caller **after** both closures have
/// finished — a thief never outlives the stack frame it borrowed — with
/// `a`'s panic taking precedence.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if pool::pool_size() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    match WorkerThread::current() {
        Some(worker) => join_on_worker(worker, a, b),
        None => global_registry().in_worker_cold(move |worker| join_on_worker(worker, a, b)),
    }
}

fn join_on_worker<A, B, RA, RB>(worker: &WorkerThread, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let b_job = StackJob::new(b);
    // Safety: we do not leave this frame until the job's latch is set
    // (wait_for_stack_job), so the reference cannot dangle.
    let b_ref = unsafe { b_job.as_job_ref() };
    worker.push(b_ref);
    let ra = panic::catch_unwind(AssertUnwindSafe(a));
    worker.wait_for_stack_job(&b_job);
    let rb = b_job.into_result();
    match (ra, rb) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        // `a`'s panic wins; `b`'s payload (if any) is dropped, like the
        // real crate.
        (Err(payload), _) => panic::resume_unwind(payload),
        (Ok(_), Err(payload)) => panic::resume_unwind(payload),
    }
}

/// A scope for spawning an unknown-ahead-of-time number of tasks that may
/// borrow from the enclosing stack frame (`'scope`). Created by [`scope`],
/// which does not return until every spawned task has finished.
pub struct Scope<'scope> {
    /// Tasks spawned but not yet finished.
    pending: AtomicUsize,
    /// First panic observed in a spawned task.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// One-worker mode: run tasks inline at the spawn site.
    inline: bool,
    /// Invariant over `'scope` (spawned closures may borrow mutably).
    marker: PhantomData<&'scope mut &'scope ()>,
}

/// Create a scope, run `op` inside it, and wait for every task it spawned
/// (transitively) to finish. The waiting thread is not idle: it executes
/// and steals pool work until the scope drains. The first panic from `op`
/// or any task is resurfaced after the scope is fully drained.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    if pool::pool_size() <= 1 {
        let s = Scope::new(true);
        let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
        return s.finish(result);
    }
    match WorkerThread::current() {
        Some(worker) => scope_on_worker(worker, op),
        None => global_registry().in_worker_cold(move |worker| scope_on_worker(worker, op)),
    }
}

fn scope_on_worker<'scope, OP, R>(worker: &WorkerThread, op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let s = Scope::new(false);
    let result = panic::catch_unwind(AssertUnwindSafe(|| op(&s)));
    worker.wait_until(|| s.pending.load(Ordering::SeqCst) == 0);
    s.finish(result)
}

impl<'scope> Scope<'scope> {
    fn new(inline: bool) -> Self {
        Scope {
            pending: AtomicUsize::new(0),
            panic: Mutex::new(None),
            inline,
            marker: PhantomData,
        }
    }

    /// Spawn a task into the scope. The task may borrow anything that
    /// outlives the [`scope`] call and may itself spawn further tasks.
    ///
    /// Tasks go onto the spawning worker's own deque (LIFO next to its
    /// current work) when called from inside the pool, and onto the global
    /// injector otherwise. A task panic is captured and re-thrown by the
    /// enclosing [`scope`] once everything has drained.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        if self.inline {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(self))) {
                self.store_panic(payload);
            }
            return;
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        let scope_ptr = SendPtr(self as *const Scope<'scope> as *const ());
        // Safety: the job borrows `self` (and whatever `body` captured
        // from `'scope`) through raw pointers; `scope` blocks until
        // `pending` hits zero, which this job's epilogue guarantees to
        // happen only after `body` has returned or panicked.
        let job = HeapJob::into_job_ref(move || {
            let scope = unsafe { &*(scope_ptr.get() as *const Scope<'_>) };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(scope))) {
                scope.store_panic(payload);
            }
            scope.pending.fetch_sub(1, Ordering::SeqCst);
        });
        match WorkerThread::current() {
            Some(worker) => worker.push(job),
            None => global_registry().inject(job),
        }
    }

    fn store_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock().unwrap();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Propagate panics (the body's own first, then the first task's) and
    /// unwrap the result.
    fn finish<R>(&self, result: std::thread::Result<R>) -> R {
        match result {
            Err(payload) => panic::resume_unwind(payload),
            Ok(r) => {
                if let Some(payload) = self.panic.lock().unwrap().take() {
                    panic::resume_unwind(payload);
                }
                r
            }
        }
    }
}

/// Raw-pointer wrapper asserting `Send` (the pointee is a [`Scope`], whose
/// shared state is all thread-safe).
struct SendPtr(*const ());
unsafe impl Send for SendPtr {}

impl SendPtr {
    /// Accessor (rather than direct field access) so closures capture the
    /// whole `Send` wrapper, not the raw pointer field (edition-2021
    /// disjoint capture would otherwise un-`Send` the closure).
    fn get(&self) -> *const () {
        self.0
    }
}

/// Number of worker threads the pool runs with: `RAYON_NUM_THREADS` if set
/// to a positive integer, else the machine's available parallelism. Fixed
/// for the life of the process.
pub fn current_num_threads() -> usize {
    pool::pool_size()
}

/// The calling thread's index within the pool (`0..current_num_threads()`),
/// or `None` when called from outside the pool. Useful for per-worker
/// caches.
pub fn current_thread_index() -> Option<usize> {
    WorkerThread::current().map(|w| w.index())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_parallel_side_effects() {
        let xs: Vec<u64> = (0..1000).collect();
        let (l, r) = join(
            || xs[..500].iter().sum::<u64>(),
            || xs[500..].iter().sum::<u64>(),
        );
        assert_eq!(l + r, 499_500);
    }

    #[test]
    fn nested_joins() {
        fn sum(lo: u64, hi: u64, depth: usize) -> u64 {
            if depth == 0 || hi - lo < 2 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| sum(lo, mid, depth - 1), || sum(mid, hi, depth - 1));
            a + b
        }
        assert_eq!(sum(0, 10_000, 6), (0..10_000).sum::<u64>());
    }

    #[test]
    fn deep_unbalanced_joins() {
        // a left-leaning chain: the second closure is tiny at every level,
        // so stealing (if any) and pop-back must both keep the totals right
        fn chain(n: u64) -> u64 {
            if n == 0 {
                return 0;
            }
            let (rest, one) = join(|| chain(n - 1), || 1u64);
            rest + one
        }
        assert_eq!(chain(300), 300);
    }

    #[test]
    fn scope_runs_all_tasks() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            for i in 0..64u64 {
                let counter = &counter;
                s.spawn(move |_| {
                    counter.fetch_add(i, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), (0..64).sum::<u64>());
    }

    #[test]
    fn scope_tasks_can_spawn_more() {
        let counter = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..8 {
                let counter = &counter;
                s.spawn(move |s| {
                    for _ in 0..8 {
                        s.spawn(move |_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_returns_value() {
        let v = scope(|s| {
            s.spawn(|_| {});
            42
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn join_propagates_panics() {
        let r = std::panic::catch_unwind(|| {
            join(|| 1, || panic!("boom-b"));
        });
        let payload = r.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom-b");

        let r = std::panic::catch_unwind(|| {
            join(|| panic!("boom-a"), || 2);
        });
        assert!(r.is_err());
    }

    #[test]
    fn scope_propagates_task_panics() {
        let r = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("task panic"));
            });
        });
        assert!(r.is_err());
        // the pool must survive a propagated panic
        let (a, b) = join(|| 1, || 2);
        assert_eq!(a + b, 3);
    }

    #[test]
    fn thread_count_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn external_thread_has_no_index() {
        assert_eq!(current_thread_index(), None);
    }
}
