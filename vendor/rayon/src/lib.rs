//! Vendored, std-only stand-in for the small slice of the `rayon` API the
//! workspace uses. The build container is offline with an empty registry,
//! so the real crate cannot be fetched.
//!
//! [`join`] provides genuine fork/join parallelism via `std::thread::scope`
//! — the second closure runs on a freshly spawned scoped thread while the
//! first runs on the caller's thread. There is no work-stealing pool;
//! callers are expected to fan out only at the top of their recursion.
//! The decomposition driver forks at the top `⌈log₂ threads⌉` levels by
//! default (≈ `threads − 1` short-lived threads at once) and clamps an
//! explicit depth override to `⌈log₂ threads⌉ + 2`, so concurrent spawned
//! threads stay within ≈ 4× the requested thread count — the right
//! trade-off for coarse-grained subtree work.

use std::thread;

/// Run `a` and `b`, potentially in parallel, returning both results.
///
/// `b` executes on a scoped thread; `a` executes on the current thread.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let handle = s.spawn(b);
        let ra = a();
        let rb = handle.join().expect("rayon-shim: joined closure panicked");
        (ra, rb)
    })
}

/// Number of threads worth fanning out to: the machine's available
/// parallelism, overridable with `RAYON_NUM_THREADS` (0 or unset = auto).
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_parallel_side_effects() {
        let xs: Vec<u64> = (0..1000).collect();
        let (l, r) = join(
            || xs[..500].iter().sum::<u64>(),
            || xs[500..].iter().sum::<u64>(),
        );
        assert_eq!(l + r, 499_500);
    }

    #[test]
    fn nested_joins() {
        fn sum(lo: u64, hi: u64, depth: usize) -> u64 {
            if depth == 0 || hi - lo < 2 {
                return (lo..hi).sum();
            }
            let mid = lo + (hi - lo) / 2;
            let (a, b) = join(|| sum(lo, mid, depth - 1), || sum(mid, hi, depth - 1));
            a + b
        }
        assert_eq!(sum(0, 10_000, 3), (0..10_000).sum::<u64>());
    }

    #[test]
    fn thread_count_positive() {
        assert!(current_num_threads() >= 1);
    }
}
