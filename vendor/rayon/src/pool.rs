//! The work-stealing pool behind [`crate::join`] and [`crate::scope`].
//!
//! # Architecture
//!
//! One global [`Registry`] is created lazily on first use and lives for the
//! process. It owns `N` worker threads (`N` from `RAYON_NUM_THREADS`, else
//! `std::thread::available_parallelism()`), each with its own deque of
//! [`JobRef`]s, plus one shared *injector* queue for work arriving from
//! threads outside the pool.
//!
//! # Stealing discipline
//!
//! Each worker treats its own deque as a LIFO stack (`push_back` /
//! `pop_back`): newly forked subtrees run hot, depth-first, exactly as the
//! sequential program would. Thieves take from the *opposite* end
//! (`pop_front`), i.e. the oldest — and therefore usually largest —
//! pending subtree, which keeps steal traffic low under the skewed work
//! distributions that dominate parallel query processing. An idle worker
//! scans the injector first (external work has no other way in), then the
//! other workers' deques starting at a per-victim rotating offset so
//! thieves don't convoy on worker 0. The deques are mutex'd `VecDeque`s
//! rather than lock-free Chase–Lev arrays: the workspace forks
//! coarse-grained tasks (SAT-checked decomposition subtrees, LP solves),
//! so queue operations are nowhere near the contention point, and `std` is
//! the only dependency available offline.
//!
//! A worker with nothing to run or steal parks on a generation-stamped
//! condvar. A push with no parked workers (the saturated steady state)
//! costs one relaxed atomic load — no lock, no syscall; a push that sees
//! sleepers takes the lock, bumps the generation, and wakes exactly one
//! of them. The narrow race (a push reading "no sleepers" just as a
//! worker parks) is deliberately left to the wait timeout: all parks are
//! timeout-bounded, so a missed wakeup degrades to at most a millisecond
//! of latency on one task, never a deadlock.
//!
//! # Blocked callers steal
//!
//! A `join` whose second closure was stolen, or a `scope` with spawned
//! tasks still in flight, does not block its thread: it enters
//! [`WorkerThread::wait_until`], which keeps popping local work and
//! stealing remote work until the completion latch it is waiting for
//! flips. This is what makes deep, irregular recursion safe — every
//! blocked frame is also a worker.
//!
//! # Panic semantics
//!
//! Every job runs under `catch_unwind`. `join` waits for *both* closures
//! to finish before resuming the first panic (never unwinding while a
//! thief still holds a pointer into the joiner's stack frame); `scope`
//! waits for all spawned tasks and then resumes the first panic observed
//! (the body's own panic taking precedence). Worker threads therefore
//! never die from task panics; panics always resurface on the caller.
//!
//! # Deadline lane (EDF)
//!
//! Every thread carries an ambient *task deadline*
//! ([`crate::with_task_deadline`]); each [`JobRef`] is stamped with it at
//! creation and re-installs it while executing, so a deadline set once at
//! a query's entry point flows through every transitive `join`/`spawn`
//! fork with no per-call plumbing. Deadline-tagged fan-out jobs (scope
//! spawns, detached spawns, injected entry jobs) bypass the FIFO queues
//! and land in a global earliest-deadline-first lane; idle workers drain
//! that lane before the injector, so under a backlog the query that must
//! finish soonest runs first regardless of arrival order. `join`'s
//! second closures stay on the owner's deque (the pop-back fast path is
//! the whole point of `join`), but they carry their stamp, and the steal
//! sweep peeks every victim's exposed front job and robs the one with the
//! earliest deadline — steals respect priority too. With no deadline
//! armed, every job is untagged, the lane stays empty, and scheduling is
//! byte-for-byte the FIFO/LIFO discipline described above.

use std::cell::Cell;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// How long an idle worker parks between steal scans once the condvar
/// generation says nothing new arrived. Small enough that a (theoretical)
/// missed wakeup costs microseconds, large enough not to burn a core.
const IDLE_PARK: Duration = Duration::from_micros(100);

// ---------------------------------------------------------------------------
// Ambient task deadline
// ---------------------------------------------------------------------------

thread_local! {
    /// The deadline of the task the current thread is executing (or the
    /// one a non-pool thread has armed via [`crate::with_task_deadline`]).
    /// Jobs are stamped with this at creation and re-install it while
    /// running, so nested forks inherit their query's deadline.
    static TASK_DEADLINE: Cell<Option<Instant>> = const { Cell::new(None) };
}

pub(crate) fn task_deadline() -> Option<Instant> {
    TASK_DEADLINE.with(|c| c.get())
}

pub(crate) fn set_task_deadline(deadline: Option<Instant>) {
    TASK_DEADLINE.with(|c| c.set(deadline));
}

// ---------------------------------------------------------------------------
// Type-erased jobs
// ---------------------------------------------------------------------------

/// A type-erased pointer to a job living either on a blocked caller's
/// stack ([`StackJob`]) or on the heap ([`HeapJob`]). The owner guarantees
/// the pointee outlives the reference (stack jobs block until their latch
/// is set; heap jobs are consumed exactly once).
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
    /// Deadline of the query this job belongs to, captured from the
    /// creating thread's ambient deadline. Drives EDF ordering and steal
    /// priority; `None` means "no deadline armed" and sorts last.
    deadline: Option<Instant>,
}

// Safety: a JobRef only crosses threads together with the closure it
// points to, whose `Send` bound the public APIs enforce.
unsafe impl Send for JobRef {}

impl JobRef {
    /// True if this reference points at `data` (used by `join` to
    /// recognize its own second closure when popping it back).
    fn points_at(&self, data: *const ()) -> bool {
        std::ptr::eq(self.data, data)
    }

    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Run the job. Consumes the reference; each job executes once.
    ///
    /// The job's deadline stamp is installed as the executing thread's
    /// ambient deadline for the duration (and restored after, even on
    /// unwind), so any work the job forks inherits it.
    pub(crate) fn execute(self) {
        struct Restore(Option<Instant>);
        impl Drop for Restore {
            fn drop(&mut self) {
                set_task_deadline(self.0);
            }
        }
        let _restore = Restore(task_deadline());
        set_task_deadline(self.deadline);
        unsafe { (self.execute_fn)(self.data) }
    }
}

/// A job whose closure and result slot live on the stack of the thread
/// that created it. That thread MUST NOT return past the job's frame until
/// [`Latch::probe`] turns true.
pub(crate) struct StackJob<F, R> {
    func: Mutex<Option<F>>,
    result: Mutex<Option<thread::Result<R>>>,
    latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F) -> Self {
        StackJob {
            func: Mutex::new(Some(func)),
            result: Mutex::new(None),
            latch: Latch::new(),
        }
    }

    pub(crate) fn latch(&self) -> &Latch {
        &self.latch
    }

    /// A type-erased reference to this job.
    ///
    /// # Safety
    /// The caller must keep `self` alive and in place until the latch is
    /// set, and must hand the reference to at most one executor.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        unsafe fn execute<F, R>(data: *const ())
        where
            F: FnOnce() -> R + Send,
            R: Send,
        {
            let job = &*(data as *const StackJob<F, R>);
            let func = job.func.lock().unwrap().take().expect("job executed twice");
            let result = panic::catch_unwind(AssertUnwindSafe(func));
            *job.result.lock().unwrap() = Some(result);
            job.latch.set();
        }
        JobRef {
            data: self as *const Self as *const (),
            execute_fn: execute::<F, R>,
            deadline: task_deadline(),
        }
    }

    /// The erased pointer identity of this job (for [`JobRef::points_at`]).
    fn data_ptr(&self) -> *const () {
        self as *const Self as *const ()
    }

    /// Take the finished result (the closure's return value, or the panic
    /// payload it unwound with). Only valid once the latch is set.
    pub(crate) fn into_result(self) -> thread::Result<R> {
        self.result
            .lock()
            .unwrap()
            .take()
            .expect("job result taken before completion")
    }
}

/// A heap-allocated fire-and-forget job (used by `scope`'s `spawn`): the
/// closure owns everything it needs; completion is signalled through
/// whatever the closure captured (a scope counter), not a latch.
pub(crate) struct HeapJob<F> {
    func: F,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    /// Box the closure and erase it. The job executes exactly once;
    /// executing frees the box.
    pub(crate) fn into_job_ref(func: F) -> JobRef {
        unsafe fn execute<F>(data: *const ())
        where
            F: FnOnce() + Send,
        {
            let job = Box::from_raw(data as *mut HeapJob<F>);
            // Panics are the closure's responsibility (scope wraps its
            // bodies in catch_unwind); a stray panic here would abort via
            // unwind-through-extern, so scope's wrapper is load-bearing.
            (job.func)();
        }
        let boxed = Box::new(HeapJob { func });
        JobRef {
            data: Box::into_raw(boxed) as *const (),
            execute_fn: execute::<F>,
            deadline: task_deadline(),
        }
    }
}

// ---------------------------------------------------------------------------
// Latches
// ---------------------------------------------------------------------------

/// A one-shot completion flag. Waiters either spin through the registry's
/// steal loop ([`WorkerThread::wait_until`]) or park with a timeout
/// ([`Latch::wait_cold`]); `set` additionally unparks one registered
/// waiter thread for promptness.
pub(crate) struct Latch {
    done: AtomicBool,
    /// Thread to unpark on set (the blocked owner), if any registered.
    waiter: Mutex<Option<thread::Thread>>,
}

impl Latch {
    pub(crate) fn new() -> Self {
        Latch {
            done: AtomicBool::new(false),
            waiter: Mutex::new(None),
        }
    }

    pub(crate) fn probe(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    pub(crate) fn set(&self) {
        // Take the waiter handle out BEFORE flipping `done`: the instant
        // the owner observes `done == true` it may return and free the
        // latch (it lives on the owner's stack), so the store must be the
        // last access to `self`. A waiter that registers in the window
        // between the take and the store misses its unpark and rides the
        // bounded park timeout instead — latency, not unsoundness.
        let waiter = self.waiter.lock().unwrap().take();
        self.done.store(true, Ordering::Release);
        if let Some(t) = waiter {
            t.unpark();
        }
    }

    /// Block the calling (non-worker) thread until set.
    pub(crate) fn wait_cold(&self) {
        while !self.probe() {
            self.park_waiting();
        }
    }

    /// Register the current thread for a prompt unpark, re-check, and park
    /// briefly. The timeout (rather than a plain `park`) makes the race
    /// between registration and `set` harmless.
    fn park_waiting(&self) {
        *self.waiter.lock().unwrap() = Some(thread::current());
        if !self.probe() {
            thread::park_timeout(IDLE_PARK);
        }
    }
}

// ---------------------------------------------------------------------------
// Sleep / wake
// ---------------------------------------------------------------------------

/// Generation-stamped condvar: pushes bump the generation and notify;
/// sleepers re-check the stamp under the lock, so a push between "found
/// nothing to steal" and "went to sleep" is never missed.
///
/// The fast path is everything: `join` pushes on every fork, so when all
/// workers are busy (the steady state of a saturated pool) `notify` must
/// cost one relaxed atomic load and nothing else. Only when the sleeper
/// count says someone is actually parked does a push take the lock — and
/// then it wakes exactly one worker, not the whole pool (each push
/// carries one job; `notify_all` would stampede every sleeper at a
/// single stealable task).
struct Sleep {
    generation: Mutex<u64>,
    condvar: Condvar,
    /// Workers currently inside `sleep` (maintained under the lock).
    sleepers: AtomicUsize,
}

impl Sleep {
    fn new() -> Self {
        Sleep {
            generation: Mutex::new(0),
            condvar: Condvar::new(),
            sleepers: AtomicUsize::new(0),
        }
    }

    fn current_generation(&self) -> u64 {
        *self.generation.lock().unwrap()
    }

    fn notify(&self) {
        if self.sleepers.load(Ordering::Relaxed) == 0 {
            // Nobody parked: a racing not-yet-parked worker re-checks the
            // generation under the lock before waiting, and the wait
            // itself is timeout-bounded — so skipping the lock here is
            // safe, and it keeps saturated-pool pushes lock-free.
            return;
        }
        let mut g = self.generation.lock().unwrap();
        *g = g.wrapping_add(1);
        self.condvar.notify_one();
    }

    /// Sleep until the generation moves past `seen` (or a timeout, which
    /// only costs another scan).
    fn sleep(&self, seen: u64) {
        let g = self.generation.lock().unwrap();
        if *g != seen {
            return;
        }
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        let _ = self.condvar.wait_timeout(g, 10 * IDLE_PARK).unwrap();
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Fault injection (test-only)
// ---------------------------------------------------------------------------

/// Steal-path fault hook (`--features fault`): lets tests make a worker
/// stall *mid-steal* — the straggler scenario EDF must recover from. The
/// hook runs on every steal sweep; a panic inside it is swallowed (a pool
/// worker must never die), so stall plans are the intended payload.
#[cfg(feature = "fault")]
pub mod fault {
    use std::panic::{self, AssertUnwindSafe};
    use std::sync::Mutex;

    static STEAL_HOOK: Mutex<Option<fn()>> = Mutex::new(None);

    /// Install (or clear, with `None`) the hook fired at the top of every
    /// steal sweep. Typically wired to `pc_budget::fault::point`.
    pub fn set_steal_hook(hook: Option<fn()>) {
        *STEAL_HOOK.lock().unwrap() = hook;
    }

    pub(crate) fn fire_steal_hook() {
        let hook = *STEAL_HOOK.lock().unwrap();
        if let Some(hook) = hook {
            let _ = panic::catch_unwind(AssertUnwindSafe(hook));
        }
    }
}

// ---------------------------------------------------------------------------
// Registry and workers
// ---------------------------------------------------------------------------

/// An entry in the global EDF lane: a deadline-tagged fan-out job plus a
/// push sequence number for FIFO tie-breaks. Ordered so the max-heap's
/// top is the *earliest* deadline (comparisons are reversed).
struct EdfEntry {
    deadline: Instant,
    seq: u64,
    job: JobRef,
}

impl PartialEq for EdfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.seq == other.seq
    }
}
impl Eq for EdfEntry {}
impl PartialOrd for EdfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EdfEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed on both keys: BinaryHeap is a max-heap, we want the
        // earliest deadline (then the oldest push) on top.
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Shared state of the global pool.
pub(crate) struct Registry {
    /// Per-worker deques. Owners push/pop at the back; thieves steal from
    /// the front.
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    /// Work injected by non-pool threads.
    injector: Mutex<VecDeque<JobRef>>,
    /// Deadline-tagged fan-out jobs, popped earliest-deadline-first.
    /// Drained before the injector: tagged work has declared urgency,
    /// untagged work has not.
    edf: Mutex<BinaryHeap<EdfEntry>>,
    /// Tie-break stamp so equal deadlines pop FIFO.
    edf_seq: AtomicU64,
    sleep: Sleep,
    /// Rotating steal offset so thieves fan out over victims.
    steal_seed: AtomicUsize,
}

/// The number of worker threads the pool runs (or would run) with:
/// `RAYON_NUM_THREADS` if set to a positive integer, else the machine's
/// available parallelism. Fixed for the life of the process once the pool
/// has started.
pub(crate) fn pool_size() -> usize {
    static SIZE: OnceLock<usize> = OnceLock::new();
    *SIZE.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// The lazily-started global registry. Worker threads are detached; they
/// live until process exit.
pub(crate) fn global_registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        deques: (0..pool_size())
            .map(|_| Mutex::new(VecDeque::new()))
            .collect(),
        injector: Mutex::new(VecDeque::new()),
        edf: Mutex::new(BinaryHeap::new()),
        edf_seq: AtomicU64::new(0),
        sleep: Sleep::new(),
        steal_seed: AtomicUsize::new(0),
    })
}

/// Start the worker threads (idempotent). Split from `global_registry` so
/// the registry can be referenced from the spawned threads' closures.
fn ensure_workers(registry: &'static Registry) {
    static STARTED: OnceLock<()> = OnceLock::new();
    STARTED.get_or_init(|| {
        for index in 0..registry.deques.len() {
            thread::Builder::new()
                .name(format!("rayon-worker-{index}"))
                .spawn(move || worker_main(registry, index))
                .expect("failed to spawn pool worker");
        }
    });
}

/// Per-thread handle identifying a pool worker.
pub(crate) struct WorkerThread {
    registry: &'static Registry,
    index: usize,
}

thread_local! {
    static CURRENT_WORKER: Cell<*const WorkerThread> = const { Cell::new(std::ptr::null()) };
}

fn worker_main(registry: &'static Registry, index: usize) {
    let worker = WorkerThread { registry, index };
    CURRENT_WORKER.with(|c| c.set(&worker as *const WorkerThread));
    loop {
        let seen = registry.sleep.current_generation();
        if let Some(job) = worker.find_work() {
            job.execute();
        } else {
            registry.sleep.sleep(seen);
        }
    }
}

impl WorkerThread {
    /// The calling thread's worker handle, if it is a pool thread.
    ///
    /// The `'static` is a small lie — the handle lives on `worker_main`'s
    /// stack — but worker stacks only unwind at process exit.
    pub(crate) fn current() -> Option<&'static WorkerThread> {
        CURRENT_WORKER.with(|c| {
            let p = c.get();
            if p.is_null() {
                None
            } else {
                Some(unsafe { &*p })
            }
        })
    }

    pub(crate) fn index(&self) -> usize {
        self.index
    }

    /// Push a job onto this worker's deque (LIFO end) and wake a sleeper
    /// to come steal it.
    pub(crate) fn push(&self, job: JobRef) {
        self.registry.deques[self.index]
            .lock()
            .unwrap()
            .push_back(job);
        self.registry.sleep.notify();
    }

    /// Push a fan-out job (scope spawn / detached spawn): deadline-tagged
    /// jobs go to the global EDF lane so the pool serves them
    /// earliest-deadline-first; untagged jobs keep the local LIFO path.
    pub(crate) fn push_fanout(&self, job: JobRef) {
        if job.deadline().is_some() {
            self.registry.push_edf(job);
        } else {
            self.push(job);
        }
    }

    /// Pop the most recently pushed local job, if any.
    fn pop_local(&self) -> Option<JobRef> {
        self.registry.deques[self.index].lock().unwrap().pop_back()
    }

    /// Something to run: local work first (LIFO), then injected work, then
    /// a steal sweep over the other workers (FIFO from each victim).
    fn find_work(&self) -> Option<JobRef> {
        if let Some(job) = self.pop_local() {
            return Some(job);
        }
        self.registry.find_external_work(Some(self.index))
    }

    /// Run jobs until `cond` is true, stealing when the local deque runs
    /// dry. This is how "blocked" frames (join waiting on a stolen
    /// closure, scope waiting on spawned tasks) stay productive.
    ///
    /// Steal discipline: the wait happens *inside* the current task's
    /// frame, so external work is filtered by the ambient task deadline —
    /// a worker blocked in an urgent task will not start a less-urgent
    /// (or untagged) task on top of it and delay its own completion
    /// behind foreign work (EDF priority inversion). Local jobs stay
    /// unrestricted: they are this worker's own (or an enclosing frame's)
    /// children and must drain for the latch to flip. With no ambient
    /// deadline the filter is wide open — plain rayon behavior.
    pub(crate) fn wait_until(&self, cond: impl Fn() -> bool) {
        let limit = task_deadline();
        while !cond() {
            let job = self.pop_local().or_else(|| {
                self.registry
                    .find_external_work_within(Some(self.index), limit)
            });
            if let Some(job) = job {
                job.execute();
            } else {
                thread::park_timeout(IDLE_PARK);
            }
        }
    }

    /// `join`'s wait discipline: run local jobs (the second closure is
    /// usually still sitting on top of our own deque — recognize it by
    /// address and stop once it has run), steal when local work runs dry
    /// (filtered by the ambient deadline, exactly as [`Self::wait_until`]),
    /// and return when `latch` flips.
    pub(crate) fn wait_for_stack_job<F, R>(&self, job: &StackJob<F, R>)
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        let limit = task_deadline();
        while !job.latch().probe() {
            if let Some(local) = self.pop_local() {
                let was_target = local.points_at(job.data_ptr());
                local.execute();
                if was_target {
                    return;
                }
            } else if let Some(stolen) = self
                .registry
                .find_external_work_within(Some(self.index), limit)
            {
                stolen.execute();
            } else {
                job.latch().park_waiting();
            }
        }
    }
}

impl Registry {
    /// Queue a deadline-tagged job in the EDF lane and wake a worker.
    pub(crate) fn push_edf(&self, job: JobRef) {
        let deadline = job
            .deadline()
            .expect("EDF lane requires a deadline-tagged job");
        let seq = self.edf_seq.fetch_add(1, Ordering::Relaxed);
        self.edf
            .lock()
            .unwrap()
            .push(EdfEntry { deadline, seq, job });
        self.sleep.notify();
    }

    /// The earliest-deadline EDF-lane job, gated by `limit`: with a limit,
    /// only a job at least as urgent (deadline `<=` limit) is taken.
    fn pop_edf_within(&self, limit: Option<Instant>) -> Option<JobRef> {
        let mut heap = self.edf.lock().unwrap();
        match (limit, heap.peek()) {
            (_, None) => None,
            (None, Some(_)) => heap.pop().map(|e| e.job),
            (Some(l), Some(e)) if e.deadline <= l => heap.pop().map(|e| e.job),
            _ => None,
        }
    }

    /// External work, earliest declared deadline first: the EDF lane, then
    /// the FIFO injector, then a steal sweep over every worker but `skip`.
    fn find_external_work(&self, skip: Option<usize>) -> Option<JobRef> {
        self.find_external_work_within(skip, None)
    }

    /// [`Self::find_external_work`] restricted to work at least as urgent
    /// as `limit`: untagged work (the injector, untagged deque fronts)
    /// counts as infinitely lax and is skipped whenever a limit is set.
    /// Blocked task frames pass their own deadline here so waiting never
    /// buries an urgent task under a laxer one.
    fn find_external_work_within(
        &self,
        skip: Option<usize>,
        limit: Option<Instant>,
    ) -> Option<JobRef> {
        if let Some(job) = self.pop_edf_within(limit) {
            return Some(job);
        }
        if limit.is_none() {
            if let Some(job) = self.injector.lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        #[cfg(feature = "fault")]
        fault::fire_steal_hook();
        self.steal_within(skip, limit)
    }

    /// Steal sweep: peek every victim's exposed front job and rob the one
    /// with the earliest deadline; among untagged fronts (or when nothing
    /// is tagged), take the first non-empty victim in rotation order —
    /// exactly the pre-EDF behavior. With a `limit`, only fronts tagged at
    /// least as urgent are considered at all.
    fn steal_within(&self, skip: Option<usize>, limit: Option<Instant>) -> Option<JobRef> {
        let n = self.deques.len();
        let start = self.steal_seed.fetch_add(1, Ordering::Relaxed) % n.max(1);
        let mut best: Option<(usize, Option<Instant>)> = None;
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == skip {
                continue;
            }
            let front = match self.deques[victim].lock().unwrap().front() {
                Some(job) => job.deadline(),
                None => continue,
            };
            if let Some(l) = limit {
                match front {
                    Some(d) if d <= l => {}
                    _ => continue,
                }
            }
            let better = match (&best, front) {
                (None, _) => true,
                (Some((_, None)), Some(_)) => true,
                (Some((_, Some(b))), Some(d)) => d < *b,
                _ => false,
            };
            if better {
                best = Some((victim, front));
            }
        }
        let (victim, _) = best?;
        // The peeked job may have been taken since. Limited: re-check the
        // front's urgency under the lock and give up on a race (the next
        // wait iteration re-sweeps). Unlimited: fall back to a plain
        // first-non-empty sweep rather than re-ranking (races are rare and
        // cost one extra pass at worst).
        if let Some(l) = limit {
            let mut dq = self.deques[victim].lock().unwrap();
            let still_urgent = matches!(
                dq.front().map(|j| j.deadline()),
                Some(Some(d)) if d <= l
            );
            return if still_urgent { dq.pop_front() } else { None };
        }
        if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
            return Some(job);
        }
        let start = self.steal_seed.fetch_add(1, Ordering::Relaxed) % n.max(1);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == skip {
                continue;
            }
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    /// Queue work from outside the pool and wake a worker. Deadline-tagged
    /// jobs go to the EDF lane; untagged work keeps FIFO arrival order.
    pub(crate) fn inject(&'static self, job: JobRef) {
        ensure_workers(self);
        if job.deadline().is_some() {
            self.push_edf(job);
            return;
        }
        self.injector.lock().unwrap().push_back(job);
        self.sleep.notify();
    }

    /// Run `f` on a pool worker, blocking the calling (external) thread
    /// until it completes. Panics inside `f` resurface here.
    pub(crate) fn in_worker_cold<F, R>(&'static self, f: F) -> R
    where
        F: FnOnce(&WorkerThread) -> R + Send,
        R: Send,
    {
        let job = StackJob::new(|| {
            let worker = WorkerThread::current().expect("injected job executed outside the pool");
            f(worker)
        });
        // Safety: we block on the latch below, so `job` outlives its ref.
        let job_ref = unsafe { job.as_job_ref() };
        self.inject(job_ref);
        job.latch().wait_cold();
        match job.into_result() {
            Ok(r) => r,
            Err(payload) => panic::resume_unwind(payload),
        }
    }
}
