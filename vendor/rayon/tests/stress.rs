//! Stress tests for the work-stealing pool with a real multi-worker
//! configuration.
//!
//! The global pool is sized once per process, so this integration test
//! (its own process, unlike the unit tests) pins `RAYON_NUM_THREADS=4`
//! before anything touches the pool — on a single-core CI container the
//! unit tests only exercise the inline fast paths, while everything here
//! runs through the deques, the injector, and the steal loop, with more
//! workers than cores (maximum contention per core).
//!
//! The invariants under test: nested `join`/`scope` under contention
//! neither deadlock nor lose tasks, results are exactly the sequential
//! ones, and panics propagate without poisoning the pool.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Once;

fn pool4() {
    static INIT: Once = Once::new();
    INIT.call_once(|| {
        // Safety of the env mutation: `Once` runs before any pool use in
        // this process, and tests in this binary all funnel through here.
        std::env::set_var("RAYON_NUM_THREADS", "4");
        assert_eq!(rayon::current_num_threads(), 4);
    });
}

/// Fork/join sum over a range, forking at every level — tiny leaves, so
/// the deques see heavy push/pop/steal traffic.
fn par_sum(lo: u64, hi: u64) -> u64 {
    if hi - lo <= 8 {
        return (lo..hi).sum();
    }
    let mid = lo + (hi - lo) / 2;
    let (a, b) = rayon::join(|| par_sum(lo, mid), || par_sum(mid, hi));
    a + b
}

#[test]
fn deep_join_tree_no_lost_work() {
    pool4();
    for _ in 0..20 {
        assert_eq!(par_sum(0, 100_000), (0..100_000).sum::<u64>());
    }
}

#[test]
fn many_external_callers_contend() {
    pool4();
    // External threads all inject into the same pool concurrently: the
    // injector, sleep/wake protocol, and steal sweep all contend.
    let handles: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let lo = t * 10_000;
                assert_eq!(par_sum(lo, lo + 10_000), (lo..lo + 10_000).sum::<u64>());
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn nested_scopes_inside_joins() {
    pool4();
    let counter = AtomicU64::new(0);
    let (left, ()) = rayon::join(
        || {
            rayon::scope(|s| {
                for _ in 0..32 {
                    let counter = &counter;
                    s.spawn(move |s| {
                        // nested spawn from within a task
                        s.spawn(move |_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            counter.load(Ordering::SeqCst)
        },
        || {
            // keep the other workers busy with join traffic meanwhile
            assert_eq!(par_sum(0, 50_000), (0..50_000).sum::<u64>());
        },
    );
    assert_eq!(left, 64);
    assert_eq!(counter.load(Ordering::SeqCst), 64);
}

#[test]
fn scope_spawned_from_external_thread() {
    pool4();
    let counter = AtomicU64::new(0);
    rayon::scope(|s| {
        for i in 0..100u64 {
            let counter = &counter;
            s.spawn(move |_| {
                counter.fetch_add(i, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(counter.load(Ordering::SeqCst), (0..100).sum::<u64>());
}

#[test]
fn unbalanced_join_chain_under_contention() {
    pool4();
    // Left-leaning join chain (worst case for stealing: one giant task,
    // many trivial siblings) racing a balanced tree.
    fn chain(n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let (rest, one) = rayon::join(|| chain(n - 1), || 1u64);
        rest + one
    }
    let (a, b) = rayon::join(|| chain(500), || par_sum(0, 20_000));
    assert_eq!(a, 500);
    assert_eq!(b, (0..20_000).sum::<u64>());
}

#[test]
fn panic_under_contention_leaves_pool_usable() {
    pool4();
    for round in 0..5 {
        let r = std::panic::catch_unwind(|| {
            rayon::join(
                || par_sum(0, 10_000),
                || {
                    if round % 2 == 0 {
                        panic!("stolen side panic");
                    }
                    0u64
                },
            )
        });
        if round % 2 == 0 {
            assert!(r.is_err());
        } else {
            assert!(r.is_ok());
        }
        // pool still fully functional afterwards
        assert_eq!(par_sum(0, 1_000), (0..1_000).sum::<u64>());
    }
}

#[test]
fn worker_indices_are_in_range() {
    pool4();
    let seen = std::sync::Mutex::new(std::collections::HashSet::new());
    rayon::scope(|s| {
        for _ in 0..64 {
            let seen = &seen;
            s.spawn(move |_| {
                if let Some(i) = rayon::current_thread_index() {
                    assert!(i < rayon::current_num_threads());
                    seen.lock().unwrap().insert(i);
                }
                // burn a little time so tasks spread over workers
                std::hint::black_box((0..1_000u64).sum::<u64>());
            });
        }
    });
    assert!(!seen.lock().unwrap().is_empty());
}
