#!/usr/bin/env bash
# End-to-end smoke for the serving front-end: start `pc serve` on an
# ephemeral port, drive ci/serve_smoke.session through `pc client
# --script` (queries, mutations, malformed lines, graceful shutdown),
# and assert both exit codes. A hung server or a dropped connection
# fails the job via the timeouts, not by wedging CI.
set -euo pipefail

PC="${PC_BIN:-target/release/pc}"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

printf 'utc,branch,price\n1,a,3.02\n2,b,6.71\n3,a,4.50\n' > "$WORK/data.csv"
printf 'TRUE => price BETWEEN 0 AND 149.99, (0, 100)\n' > "$WORK/constraints.txt"

"$PC" serve \
  --data "$WORK/data.csv" \
  --schema utc:int,branch:cat,price:float \
  --constraints "$WORK/constraints.txt" \
  --listen 127.0.0.1:0 \
  --drain-ms 2000 > "$WORK/serve.out" 2>&1 &
SERVE_PID=$!

# The banner `listening on <addr>` is flushed before the accept loop.
ADDR=""
for _ in $(seq 1 50); do
  ADDR="$(sed -n 's/^listening on //p' "$WORK/serve.out" | head -1)"
  [ -n "$ADDR" ] && break
  kill -0 "$SERVE_PID" 2>/dev/null || { cat "$WORK/serve.out"; echo "server died before listening"; exit 1; }
  sleep 0.1
done
[ -n "$ADDR" ] || { cat "$WORK/serve.out"; echo "no listen banner"; exit 1; }
echo "serving on $ADDR"

CLIENT_RC=0
timeout 60 "$PC" client --addr "$ADDR" --script ci/serve_smoke.session | tee "$WORK/session.out" || CLIENT_RC=$?

# `shutdown` drains the server; it must exit 0 on its own.
SERVE_RC=0
if ! timeout 30 tail --pid="$SERVE_PID" -f /dev/null 2>/dev/null; then
  kill "$SERVE_PID" 2>/dev/null || true
  echo "server did not exit after shutdown"; exit 1
fi
wait "$SERVE_PID" || SERVE_RC=$?

echo "client exit=$CLIENT_RC server exit=$SERVE_RC"
[ "$CLIENT_RC" -eq 0 ] || { echo "scripted session had expectation mismatches"; exit 1; }
[ "$SERVE_RC" -eq 0 ] || { cat "$WORK/serve.out"; echo "server exited non-zero"; exit 1; }

# Spot-check the session transcript: epoch stamps moved and the
# malformed lines really answered ERR without killing the connection.
grep -q '^OK pong' "$WORK/session.out"
grep -q '^OK added=c1 epoch=1' "$WORK/session.out"
grep -q '^OK replaced=c1 added=c2 epoch=2' "$WORK/session.out"
grep -q '^OK retired=c2 epoch=3' "$WORK/session.out"
grep -q 'shed-cache-hits=' "$WORK/session.out"
grep -q '^OK draining' "$WORK/session.out"
! grep -q '^MISMATCH' "$WORK/session.out"
echo "serve smoke passed"
